#include "core/afraid_controller.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "array/decluster.h"

namespace afraid {

const char* DiskOpPurposeName(DiskOpPurpose purpose) {
  switch (purpose) {
    case DiskOpPurpose::kClientRead:
      return "client read";
    case DiskOpPurpose::kClientWrite:
      return "client write";
    case DiskOpPurpose::kOldDataRead:
      return "old-data read";
    case DiskOpPurpose::kOldParityRead:
      return "old-parity read";
    case DiskOpPurpose::kParityWrite:
      return "parity write";
    case DiskOpPurpose::kReconstructRead:
      return "reconstruct read";
    case DiskOpPurpose::kRebuildRead:
      return "rebuild read";
    case DiskOpPurpose::kRebuildWrite:
      return "rebuild write";
    case DiskOpPurpose::kRecoveryRead:
      return "recovery read";
    case DiskOpPurpose::kRecoveryWrite:
      return "recovery write";
    case DiskOpPurpose::kNumPurposes:
      break;
  }
  return "unknown";
}

const char* LossCauseName(LossCause cause) {
  switch (cause) {
    case LossCause::kStaleParityDegradedRead:
      return "stale-parity degraded read";
    case LossCause::kStaleParityReconstruction:
      return "stale-parity reconstruction";
  }
  return "unknown";
}

AfraidController::AfraidController(Simulator* sim, const ArrayConfig& config,
                                   std::unique_ptr<ParityPolicy> policy,
                                   const AvailabilityParams& avail_params, Probe probe)
    : sim_(sim),
      cfg_(config),
      policy_(std::move(policy)),
      avail_params_(avail_params),
      layout_(MakeLayout(config.layout, config.num_disks,
                         config.stripe_unit_bytes,
                         DiskGeometry(config.disk_spec.zones, config.disk_spec.heads,
                                      config.disk_spec.sector_bytes)
                             .CapacityBytes(),
                         config.parity_blocks, config.decluster_width)),
      nvram_(layout_->num_stripes() * config.marks_per_stripe),
      read_cache_(config.read_cache_bytes, config.stripe_unit_bytes),
      staging_(config.write_staging_bytes, config.stripe_unit_bytes),
      start_time_(sim->Now()),
      unprot_bytes_(sim->Now()),
      busy_clients_(sim->Now()) {
  assert(cfg_.parity_blocks == 1);  // RAID 6 lives in Raid6Controller.
  assert(cfg_.stripe_unit_bytes % cfg_.disk_spec.sector_bytes == 0);
  assert(cfg_.marks_per_stripe >= 1);
  // Bands must be sector-aligned on every block.
  assert((cfg_.stripe_unit_bytes / cfg_.disk_spec.sector_bytes) %
             cfg_.marks_per_stripe ==
         0);
  for (int32_t d = 0; d < cfg_.num_disks; ++d) {
    const Probe disk_probe = probe.NewTrack("disk" + std::to_string(d));
    disk_probes_.push_back(disk_probe);
    disks_.push_back(std::make_unique<DiskModel>(sim_, cfg_.disk_spec, d, disk_probe));
  }
  ctrl_probe_ = probe.NewTrack("controller");
  rebuild_probe_ = probe.NewTrack("rebuild");
  if (cfg_.track_content) {
    content_ = std::make_unique<ContentModel>(
        layout_->data_blocks_per_stripe(), layout_->parity_blocks(),
        static_cast<int32_t>(cfg_.stripe_unit_bytes / cfg_.disk_spec.sector_bytes));
  }
  idle_detector_ = std::make_unique<IdleDetector>(sim_, cfg_.idle_delay, [this] {
    // The array has been completely idle for the configured delay: start
    // processing pending parity updates if the policy permits.
    if (rebuilding_ || scrub_active_ || reconstruction_active_ || failed_disk_ >= 0 ||
        nvram_.failed() || nvram_.DirtyCount() == 0) {
      return;
    }
    if (cfg_.use_idle_predictor) {
      // [Golding95]: skip gaps predicted too short for even one rebuild
      // step -- starting one would only collide with the next burst.
      const SimDuration predicted = idle_predictor_.PredictRemaining(cfg_.idle_delay);
      if (idle_predictor_.Observations() >= 4 &&
          static_cast<double>(predicted) < rebuild_step_estimate_ns_) {
        ++predictor_skips_;
        return;
      }
    }
    if (policy_->RebuildOnIdle(MakePolicyContext())) {
      BeginRebuildPass();
      RebuildNext();
    }
  });
}

AfraidController::~AfraidController() = default;

uint64_t AfraidController::TotalDiskOps() const {
  uint64_t total = 0;
  for (uint64_t c : disk_ops_) {
    total += c;
  }
  return total;
}

std::string AfraidController::PolicyLabel() const { return policy_->Name(); }

SchemeState AfraidController::State() const {
  SchemeState st;
  st.failed_disk = failed_disk_;
  st.recovering_disk = recovering_disk_;
  st.reconstruction_active = reconstruction_active_;
  st.rebuild_active = rebuilding_;
  st.dirty_marks = nvram_.DirtyCount();
  st.parity_lag_bytes = CurrentParityLagBytes();
  st.last_write_raid5 = last_write_raid5_;
  st.loss_events = loss_events_;
  st.bytes_lost = bytes_lost_;
  return st;
}

SchemeStats AfraidController::Stats() const {
  SchemeStats s;
  s.mean_parity_lag_bytes = MeanParityLagBytes();
  s.t_unprot_fraction = TUnprotFraction();
  s.max_dirty_stripes = MaxDirtyStripes();
  s.stripes_rebuilt = stripes_rebuilt_;
  s.rebuild_passes = rebuild_passes_;
  s.afraid_mode_writes = afraid_mode_writes_;
  s.raid5_mode_writes = raid5_mode_writes_;
  s.disk_ops_total = TotalDiskOps();
  s.disk_ops_rebuild = DiskOps(DiskOpPurpose::kRebuildRead) +
                       DiskOps(DiskOpPurpose::kRebuildWrite);
  s.disk_ops_parity = DiskOps(DiskOpPurpose::kParityWrite) +
                      DiskOps(DiskOpPurpose::kOldDataRead) +
                      DiskOps(DiskOpPurpose::kOldParityRead);
  s.cache_hits = CacheHits();
  s.idle_fraction = IdleFraction();
  s.loss_events = loss_events_;
  s.bytes_lost = bytes_lost_;
  return s;
}

PolicyContext AfraidController::MakePolicyContext() const {
  PolicyContext ctx;
  ctx.now = sim_->Now();
  ctx.elapsed = sim_->Now() - start_time_;
  ctx.dirty_stripes = nvram_.DirtyCount();
  ctx.t_unprot_fraction = TUnprotFraction();
  ctx.mean_parity_lag_bytes = MeanParityLagBytes();
  ctx.idle_fraction = IdleFraction();
  ctx.array_busy = ArrayBusy();
  ctx.avail = &avail_params_;
  return ctx;
}

// --- Bookkeeping helpers ------------------------------------------------------

void AfraidController::NoteClientStart() {
  if (outstanding_clients_ == 0) {
    busy_clients_.Set(sim_->Now(), 1.0);
    idle_detector_->NoteBusy();
    // The idle period that just ended is a predictor observation -- but only
    // if it outlived the detector delay: the prediction is consumed at
    // detector-fire time, so the relevant population is the periods that
    // got that far (inter-request micro-gaps would otherwise swamp the mean).
    const SimDuration period = sim_->Now() - idle_started_at_;
    if (period >= cfg_.idle_delay && period > 0) {
      idle_predictor_.ObserveIdlePeriod(period);
    }
  }
  ++outstanding_clients_;
}

void AfraidController::NoteClientEnd() {
  assert(outstanding_clients_ > 0);
  --outstanding_clients_;
  if (outstanding_clients_ == 0) {
    busy_clients_.Set(sim_->Now(), 0.0);
    idle_detector_->NoteIdle();
    idle_started_at_ = sim_->Now();
  }
  TriggerRebuildCheck();
}

std::pair<int32_t, int32_t> AfraidController::BandsOfRange(int32_t offset_in_block,
                                                           int32_t length) const {
  const int64_t band_height = layout_->stripe_unit() / cfg_.marks_per_stripe;
  const auto first = static_cast<int32_t>(offset_in_block / band_height);
  const auto last = static_cast<int32_t>((offset_in_block + length - 1) / band_height);
  return {first, last};
}

void AfraidController::MarkBands(int64_t stripe, int32_t first_band,
                                 int32_t last_band) {
  assert(!nvram_.failed());
  assert(first_band >= 0 && last_band < cfg_.marks_per_stripe);
  for (int32_t b = first_band; b <= last_band; ++b) {
    if (nvram_.Mark(stripe * cfg_.marks_per_stripe + b)) {
      unprot_bytes_.Add(sim_->Now(), static_cast<double>(BandBytesPerStripe()));
      max_dirty_ = std::max(max_dirty_, nvram_.DirtyCount());
    }
  }
}

void AfraidController::ClearBandKey(int64_t key) {
  if (nvram_.Clear(key)) {
    unprot_bytes_.Add(sim_->Now(), -static_cast<double>(BandBytesPerStripe()));
  }
  CheckWatchers(key);
}

void AfraidController::ClearAllBands(int64_t stripe) {
  for (int32_t b = 0; b < cfg_.marks_per_stripe; ++b) {
    ClearBandKey(stripe * cfg_.marks_per_stripe + b);
  }
}

bool AfraidController::AnyBandDirty(int64_t stripe) const {
  for (int32_t b = 0; b < cfg_.marks_per_stripe; ++b) {
    if (nvram_.IsDirty(stripe * cfg_.marks_per_stripe + b)) {
      return true;
    }
  }
  return false;
}

bool AfraidController::RangeDirty(int64_t stripe, int32_t offset_in_block,
                                  int32_t length) const {
  const auto [first, last] = BandsOfRange(offset_in_block, length);
  for (int32_t b = first; b <= last; ++b) {
    if (nvram_.IsDirty(stripe * cfg_.marks_per_stripe + b)) {
      return true;
    }
  }
  return false;
}

void AfraidController::CheckWatchers(int64_t cleared_stripe) {
  for (size_t i = 0; i < watchers_.size();) {
    watchers_[i].waiting.erase(cleared_stripe);
    if (watchers_[i].waiting.empty()) {
      auto done = std::move(watchers_[i].done);
      watchers_.erase(watchers_.begin() + static_cast<ptrdiff_t>(i));
      done();
    } else {
      ++i;
    }
  }
}

bool AfraidController::WantRaid5Write() {
  if (nvram_.failed()) {
    return true;  // Without marking memory, deferring parity is unsafe.
  }
  return policy_->UseRaid5Write(MakePolicyContext());
}

void AfraidController::RecordLoss(LossCause cause, int64_t stripe, int64_t bytes) {
  assert(bytes > 0);
  ++loss_events_;
  bytes_lost_ += bytes;
  if (ctrl_probe_) {
    ctrl_probe_.Instant(std::string("data loss: ") + LossCauseName(cause), sim_->Now());
  }
  if (loss_listener_) {
    LossEvent ev;
    ev.time = sim_->Now();
    ev.cause = cause;
    ev.stripe = stripe;
    ev.bytes = bytes;
    loss_listener_(ev);
  }
}

void AfraidController::IssueDiskOp(int32_t disk, int64_t byte_offset, int64_t length,
                                   bool is_write, DiskOpPurpose purpose,
                                   DiskDone done) {
  assert(disk >= 0 && disk < cfg_.num_disks);
  const int32_t sector = cfg_.disk_spec.sector_bytes;
  assert(byte_offset % sector == 0);
  assert(length > 0 && length % sector == 0);
  ++disk_ops_[static_cast<size_t>(purpose)];
  DiskOp op;
  op.lba = byte_offset / sector;
  op.sectors = static_cast<int32_t>(length / sector);
  op.is_write = is_write;
  const Probe disk_probe =
      disk_probes_.empty() ? Probe() : disk_probes_[static_cast<size_t>(disk)];
  if (disk_probe) {
    disks_[static_cast<size_t>(disk)]->Submit(
        op,
        [disk_probe, purpose, done = std::move(done)](const DiskOpResult& r) mutable {
          if (r.ok) {
            // Emitted at completion, so per-track spans are ordered by finish
            // time (tests/obs asserts this invariant).
            disk_probe.Complete(DiskOpPurposeName(purpose), r.service_start, r.finish);
          }
          done(r.ok);
        });
  } else {
    disks_[static_cast<size_t>(disk)]->Submit(
        op, [done = std::move(done)](const DiskOpResult& r) mutable { done(r.ok); });
  }
}

// --- Client entry point -------------------------------------------------------

void AfraidController::Submit(const ClientRequest& request, RequestDone done) {
  assert(request.size > 0);
  assert(request.offset >= 0 &&
         request.offset + request.size <= layout_->data_capacity_bytes());
  NoteClientStart();
  // The client-completion + NoteClientEnd pair is folded into the request's
  // join callback (DoRead/DoWrite) so no intermediate wrapper is needed.
  if (request.is_write) {
    DoWrite(request, std::move(done));
  } else {
    DoRead(request, std::move(done));
  }
}

// --- Reads ----------------------------------------------------------------------

void AfraidController::DoRead(const ClientRequest& r, RequestDone done) {
  // Planned requests carry their precompiled Split(); unplanned ones split
  // into the scratch, which is only read within this synchronous loop (every
  // continuation captures its Segment by value).
  Span<Segment> segs{r.plan_segs, r.plan_seg_count};
  if (r.plan_segs == nullptr) {
    layout_->SplitInto(r.offset, r.size, &read_split_scratch_);
    segs = Span<Segment>{read_split_scratch_.data(),
                         static_cast<int32_t>(read_split_scratch_.size())};
  }
  JoinBlock* join = joins_.Make(segs.count,
                                [this, done = std::move(done)](bool) mutable {
                                  done();
                                  NoteClientEnd();
                                });
  for (const Segment& seg : segs) {
    const int32_t disk = layout_->DataDisk(seg.stripe, seg.block_in_stripe);
    const bool need_degraded =
        disk == failed_disk_ ||
        (disk == recovering_disk_ && seg.stripe >= recovery_frontier_);
    if (need_degraded) {
      DegradedReadSegment(seg, join);
      continue;
    }
    const int64_t key = BlockKey(seg.stripe, seg.block_in_stripe);
    if (read_cache_.Lookup(key) || staging_.Lookup(key)) {
      sim_->After(cfg_.cache_hit_time, [join] { join->Dec(true); });
      continue;
    }
    const int64_t disk_off =
        layout_->DataLocation(seg.stripe, seg.block_in_stripe).byte_offset +
        seg.offset_in_block;
    IssueDiskOp(disk, disk_off, seg.length, /*is_write=*/false,
                DiskOpPurpose::kClientRead, [this, seg, key, join](bool ok) {
                  if (ok) {
                    if (seg.length == layout_->stripe_unit()) {
                      read_cache_.Insert(key);
                    }
                    join->Dec(true);
                  } else {
                    // The disk died mid-flight: recover via parity.
                    DegradedReadSegment(seg, join);
                  }
                });
  }
}

void AfraidController::DegradedReadSegment(const Segment& seg, JoinBlock* parent) {
  const int64_t stripe = seg.stripe;
  locks_.Acquire(stripe, LockMode::kExclusive, [this, seg, stripe, parent] {
    const int32_t n = layout_->data_blocks_per_stripe();
    auto finish = [this, seg, stripe, parent](bool) {
      if (RangeDirty(stripe, seg.offset_in_block, seg.length)) {
        // Parity was stale for this band when the disk died: the
        // reconstructed bytes are not the data the client wrote. Record the
        // loss (Section 3.2).
        RecordLoss(LossCause::kStaleParityDegradedRead, stripe, seg.length);
      }
      locks_.Release(stripe, LockMode::kExclusive);
      parent->Dec(true);
    };
    JoinBlock* join = joins_.Make(n, finish);  // n-1 data reads + parity.
    for (int32_t j = 0; j < n; ++j) {
      if (j == seg.block_in_stripe) {
        continue;
      }
      const BlockLoc dl = layout_->DataLocation(stripe, j);
      const int64_t off = dl.byte_offset + seg.offset_in_block;
      IssueDiskOp(dl.disk, off, seg.length, /*is_write=*/false,
                  DiskOpPurpose::kReconstructRead, [join](bool ok) { join->Dec(ok); });
    }
    const BlockLoc pl = layout_->ParityLocation(stripe);
    const int64_t poff = pl.byte_offset + seg.offset_in_block;
    IssueDiskOp(pl.disk, poff, seg.length, /*is_write=*/false,
                DiskOpPurpose::kReconstructRead, [join](bool ok) { join->Dec(ok); });
  });
}

// --- Writes ---------------------------------------------------------------------

void AfraidController::DoWrite(const ClientRequest& r, RequestDone done) {
  // The segments must stay alive (and in place) until the request's join
  // fires; the per-stripe groups are spans into them. A planned request's
  // segments live in the RequestPlan (stable for the whole run); otherwise a
  // pooled vector holds them, owned by the join. Split emits nondecreasing
  // stripe numbers, so the old std::map grouping is equivalent to a
  // contiguous-run scan -- same groups, same ascending order.
  std::vector<Segment>* pooled = nullptr;
  const Segment* base = r.plan_segs;
  auto count = static_cast<size_t>(r.plan_seg_count);
  if (base == nullptr) {
    pooled = seg_pool_.Acquire();
    layout_->SplitInto(r.offset, r.size, pooled);
    base = pooled->data();
    count = pooled->size();
  }
  int32_t n_groups = 0;
  for (size_t i = 0; i < count; ++i) {
    if (i == 0 || base[i].stripe != base[i - 1].stripe) {
      ++n_groups;
    }
  }
  JoinBlock* join =
      joins_.Make(n_groups, [this, done = std::move(done), pooled](bool) mutable {
        if (pooled != nullptr) {
          seg_pool_.Release(pooled);
        }
        done();
        NoteClientEnd();
      });
  size_t i = 0;
  while (i < count) {
    size_t j = i + 1;
    while (j < count && base[j].stripe == base[i].stripe) {
      ++j;
    }
    RunStripeWriteGroup(r.id, base[i].stripe,
                        Span<Segment>{base + i, static_cast<int32_t>(j - i)}, 0,
                        join);
    i = j;
  }
}

void AfraidController::RunStripeWriteGroup(uint64_t request_id, int64_t stripe,
                                           Span<Segment> segs, int32_t attempt,
                                           JoinBlock* group_join) {
  const bool degraded =
      failed_disk_ >= 0 ||
      (recovering_disk_ >= 0 && stripe >= recovery_frontier_);
  // Per-region redundancy classes (Section 5) override the policy.
  const RedundancyClass cls = RegionClassOf(stripe);
  if (!degraded && cls == RedundancyClass::kAlwaysAfraid) {
    ++afraid_mode_writes_;
    AfraidWriteGroup(request_id, stripe, segs, attempt, group_join);
    return;
  }
  if (!degraded && cls == RedundancyClass::kNeverParity) {
    // RAID 0-style region: mark-and-forget (the rebuilder skips it).
    ++afraid_mode_writes_;
    AfraidWriteGroup(request_id, stripe, segs, attempt, group_join);
    return;
  }
  const bool forced_raid5 = cls == RedundancyClass::kAlwaysRaid5;
  // RAID 5 mode exists to avoid *adding* exposure. A write whose bands are
  // all already stale adds none -- they are unprotected either way until the
  // background rebuild reaches them -- so it can take the cheap AFRAID path
  // even in RAID 5 mode. (Degraded operation is the exception: parity must
  // be kept current to stand in for the missing disk.)
  bool already_exposed = !degraded && !forced_raid5;
  if (already_exposed) {
    for (const Segment& seg : segs) {
      const auto [first, last] = BandsOfRange(seg.offset_in_block, seg.length);
      for (int32_t b = first; b <= last; ++b) {
        if (!nvram_.IsDirty(stripe * cfg_.marks_per_stripe + b)) {
          already_exposed = false;
          break;
        }
      }
      if (!already_exposed) {
        break;
      }
    }
  }
  // Evaluation order matters: WantRaid5Write() consults (and may advance)
  // the policy, so it must stay short-circuited exactly as before.
  const bool use_raid5 = degraded || forced_raid5 || (!already_exposed && WantRaid5Write());
  if (ctrl_probe_ && use_raid5 != last_write_raid5_) {
    ctrl_probe_.Instant(use_raid5 ? "mode: RAID5" : "mode: AFRAID", sim_->Now());
  }
  last_write_raid5_ = use_raid5;
  if (use_raid5) {
    ++raid5_mode_writes_;
    Raid5WriteGroup(request_id, stripe, segs, attempt, group_join);
  } else {
    ++afraid_mode_writes_;
    AfraidWriteGroup(request_id, stripe, segs, attempt, group_join);
  }
}

void AfraidController::AfraidWriteGroup(uint64_t request_id, int64_t stripe,
                                        Span<Segment> segs, int32_t attempt,
                                        JoinBlock* group_join) {
  locks_.Acquire(stripe, LockMode::kShared, [this, request_id, stripe, segs,
                                             attempt, group_join] {
    // Mark first: the bands must read as unredundant before any new data is
    // on disk, or a crash window would hide the stale parity.
    for (const Segment& seg : segs) {
      const auto [first, last] = BandsOfRange(seg.offset_in_block, seg.length);
      MarkBands(stripe, first, last);
    }
    TriggerRebuildCheck();

    auto finish = [this, request_id, stripe, segs, attempt,
                   group_join](bool all_ok) {
      locks_.Release(stripe, LockMode::kShared);
      if (!all_ok && attempt < 2) {
        // A disk died under us: rerun this group through the (now degraded)
        // RAID 5 path, which routes around the failed mechanism.
        RunStripeWriteGroup(request_id, stripe, segs, attempt + 1, group_join);
        return;
      }
      group_join->Dec(true);
    };
    JoinBlock* join = joins_.Make(segs.count, finish);
    for (const Segment& seg : segs) {
      const BlockLoc dl = layout_->DataLocation(stripe, seg.block_in_stripe);
      const int64_t off = dl.byte_offset + seg.offset_in_block;
      IssueDiskOp(dl.disk, off, seg.length, /*is_write=*/true, DiskOpPurpose::kClientWrite,
                  [this, request_id, seg, join](bool ok) {
                    if (ok) {
                      ApplyDataWrite(request_id, seg);
                    }
                    join->Dec(ok);
                  });
    }
  });
}

void AfraidController::ApplyDataWrite(uint64_t request_id, const Segment& seg) {
  const int64_t key = BlockKey(seg.stripe, seg.block_in_stripe);
  if (seg.length == layout_->stripe_unit()) {
    staging_.Insert(key);
    read_cache_.Invalidate(key);
  } else {
    // Partial overwrite: any cached full-block copy is stale.
    staging_.Invalidate(key);
    read_cache_.Invalidate(key);
  }
  if (content_ != nullptr) {
    const int32_t sector = cfg_.disk_spec.sector_bytes;
    const int32_t first = seg.offset_in_block / sector;
    const int32_t count = seg.length / sector;
    const int64_t logical_first = seg.logical_offset / sector;
    for (int32_t i = 0; i < count; ++i) {
      content_->SetData(seg.stripe, seg.block_in_stripe, first + i,
                        ContentModel::MixTag(request_id, logical_first + i));
    }
  }
}

void AfraidController::Raid5WriteGroup(uint64_t request_id, int64_t stripe,
                                       Span<Segment> segs, int32_t attempt,
                                       JoinBlock* group_join) {
  locks_.Acquire(stripe, LockMode::kExclusive, [this, request_id, stripe, segs,
                                                attempt, group_join] {
    const int32_t n = layout_->data_blocks_per_stripe();
    const int64_t unit = layout_->stripe_unit();
    // A stale band under any written range forces a from-scratch parity
    // recompute; stale bands *outside* the written ranges do not (per-band
    // parity validity is exactly what sub-stripe marking buys).
    bool dirty = false;
    for (const Segment& seg : segs) {
      if (RangeDirty(stripe, seg.offset_in_block, seg.length)) {
        dirty = true;
        break;
      }
    }

    // Which data blocks does this group touch, and fully or partially? The
    // by-block table is reused scratch, consumed synchronously below (the
    // write steps re-derive anything they need from the segment span).
    by_block_scratch_.assign(static_cast<size_t>(n), nullptr);
    int32_t covered = 0;
    int32_t fully_covered = 0;
    for (const Segment& seg : segs) {
      assert(by_block_scratch_[static_cast<size_t>(seg.block_in_stripe)] == nullptr);
      by_block_scratch_[static_cast<size_t>(seg.block_in_stripe)] = &seg;
      ++covered;
      if (seg.length == unit) {
        ++fully_covered;
      }
    }
    const bool full_stripe = (fully_covered == n);
    // A stale-parity stripe cannot be RMW'd (the old parity is garbage), and
    // neither can a degraded stripe (a pre-read might need the dead or
    // not-yet-reconstructed disk); both recompute parity from scratch.
    // Otherwise pick reconstruct-write when the group touches more than the
    // configured fraction of the stripe.
    const bool degraded =
        failed_disk_ >= 0 ||
        (recovering_disk_ >= 0 && stripe >= recovery_frontier_);
    const bool reconstruct =
        !full_stripe &&
        (dirty || degraded ||
         static_cast<double>(covered) >
             cfg_.reconstruct_write_fraction * static_cast<double>(n));

    const bool full_parity_rewrite = full_stripe || reconstruct;
    auto finish = [this, request_id, stripe, segs, attempt, full_parity_rewrite,
                   group_join](bool all_ok) {
      if (all_ok && full_parity_rewrite) {
        ClearAllBands(stripe);  // The full parity unit is fresh again.
      }
      locks_.Release(stripe, LockMode::kExclusive);
      if (!all_ok && attempt < 2) {
        RunStripeWriteGroup(request_id, stripe, segs, attempt + 1, group_join);
        return;
      }
      group_join->Dec(true);
    };
    JoinBlock* fin = joins_.Make(1, finish);

    if (full_stripe) {
      WriteFullStripe(request_id, stripe, segs, fin);
    } else if (reconstruct) {
      ReconstructWrite(request_id, stripe, segs, fin);
    } else {
      ReadModifyWrite(request_id, stripe, segs, fin);
    }
  });
}

void AfraidController::WriteFullStripe(uint64_t request_id, int64_t stripe,
                                       Span<Segment> segs, JoinBlock* fin) {
  const int64_t unit = layout_->stripe_unit();
  const int32_t sector = cfg_.disk_spec.sector_bytes;
  const auto spu = static_cast<int32_t>(unit / sector);

  // Precompute the new parity: xor of the new data values at each position.
  // The pooled buffer lives until this step's join fires (the parity-write
  // callback reads it); released in the join's completion.
  std::vector<uint64_t>* pv = nullptr;
  if (content_ != nullptr) {
    pv = u64_pool_.Acquire();
    pv->assign(static_cast<size_t>(spu), 0);
    for (const Segment& seg : segs) {
      const int64_t logical_first = seg.logical_offset / sector;
      for (int32_t i = 0; i < spu; ++i) {
        (*pv)[static_cast<size_t>(i)] ^=
            ContentModel::MixTag(request_id, logical_first + i);
      }
    }
  }

  JoinBlock* join = joins_.Make(segs.count + 1, [this, pv, fin](bool ok) {
    if (pv != nullptr) {
      u64_pool_.Release(pv);
    }
    fin->Dec(ok);
  });
  for (const Segment& seg : segs) {
    const BlockLoc dl = layout_->DataLocation(stripe, seg.block_in_stripe);
    if (dl.disk == failed_disk_) {
      // The data lives on implicitly via parity (degraded full-stripe write).
      sim_->After(0, [join] { join->Dec(true); });
      continue;
    }
    IssueDiskOp(dl.disk, dl.byte_offset, unit, /*is_write=*/true,
                DiskOpPurpose::kClientWrite, [this, request_id, seg, join](bool ok) {
                  if (ok) {
                    ApplyDataWrite(request_id, seg);
                  }
                  join->Dec(ok);
                });
  }
  const BlockLoc pl = layout_->ParityLocation(stripe);
  if (pl.disk == failed_disk_) {
    sim_->After(0, [join] { join->Dec(true); });
  } else {
    IssueDiskOp(pl.disk, pl.byte_offset, unit, /*is_write=*/true, DiskOpPurpose::kParityWrite,
                [this, stripe, pv, spu, join](bool ok) {
                  if (ok && content_ != nullptr) {
                    for (int32_t i = 0; i < spu; ++i) {
                      content_->SetParity(stripe, i, (*pv)[static_cast<size_t>(i)]);
                    }
                  }
                  join->Dec(ok);
                });
  }
}

void AfraidController::ReconstructWrite(uint64_t request_id, int64_t stripe,
                                        Span<Segment> segs, JoinBlock* fin) {
  const int32_t n = layout_->data_blocks_per_stripe();
  const int64_t unit = layout_->stripe_unit();
  const int32_t sector = cfg_.disk_spec.sector_bytes;
  const auto spu = static_cast<int32_t>(unit / sector);

  // Precompute the post-write parity now: the exclusive lock guarantees no
  // other mutation of this stripe until we finish, so current content is
  // exactly what the companion reads will observe. by_block_scratch_ (filled
  // by the caller) is consumed synchronously within this call; the pooled
  // parity buffer lives until the write phase's join fires.
  std::vector<uint64_t>* pv = nullptr;
  if (content_ != nullptr) {
    pv = u64_pool_.Acquire();
    pv->assign(static_cast<size_t>(spu), 0);
    for (int32_t j = 0; j < n; ++j) {
      const Segment* seg = by_block_scratch_[static_cast<size_t>(j)];
      for (int32_t i = 0; i < spu; ++i) {
        uint64_t v = content_->GetData(stripe, j, i);
        if (seg != nullptr) {
          const int32_t first = seg->offset_in_block / sector;
          const int32_t count = seg->length / sector;
          if (i >= first && i < first + count) {
            v = ContentModel::MixTag(request_id,
                                     seg->logical_offset / sector + (i - first));
          }
        }
        (*pv)[static_cast<size_t>(i)] ^= v;
      }
    }
  }

  // Phase 1: read (fully) every data block that is not fully overwritten.
  auto write_phase = [this, request_id, stripe, segs, spu, pv,
                      fin](bool reads_ok) {
    if (!reads_ok) {
      if (pv != nullptr) {
        u64_pool_.Release(pv);
      }
      fin->Dec(false);
      return;
    }
    const int64_t unit2 = layout_->stripe_unit();
    JoinBlock* join = joins_.Make(segs.count + 1, [this, pv, fin](bool ok) {
      if (pv != nullptr) {
        u64_pool_.Release(pv);
      }
      fin->Dec(ok);
    });
    for (const Segment& seg : segs) {
      const BlockLoc dl = layout_->DataLocation(stripe, seg.block_in_stripe);
      if (dl.disk == failed_disk_) {
        sim_->After(0, [join] { join->Dec(true); });
        continue;
      }
      const int64_t off = dl.byte_offset + seg.offset_in_block;
      IssueDiskOp(dl.disk, off, seg.length, /*is_write=*/true,
                  DiskOpPurpose::kClientWrite, [this, request_id, seg, join](bool ok) {
                    if (ok) {
                      ApplyDataWrite(request_id, seg);
                    }
                    join->Dec(ok);
                  });
    }
    const BlockLoc pl = layout_->ParityLocation(stripe);
    if (pl.disk == failed_disk_) {
      sim_->After(0, [join] { join->Dec(true); });
    } else {
      IssueDiskOp(pl.disk, pl.byte_offset, unit2, /*is_write=*/true,
                  DiskOpPurpose::kParityWrite,
                  [this, stripe, pv, spu, join](bool ok) {
                    if (ok && content_ != nullptr) {
                      for (int32_t i = 0; i < spu; ++i) {
                        content_->SetParity(stripe, i,
                                            (*pv)[static_cast<size_t>(i)]);
                      }
                    }
                    join->Dec(ok);
                  });
    }
  };

  int32_t reads_needed = 0;
  for (int32_t j = 0; j < n; ++j) {
    const Segment* seg = by_block_scratch_[static_cast<size_t>(j)];
    const bool fully = seg != nullptr && seg->length == unit;
    const int32_t disk = layout_->DataDisk(stripe, j);
    if (!fully && disk != failed_disk_) {
      ++reads_needed;
    }
  }
  if (reads_needed == 0) {
    write_phase(true);
    return;
  }
  JoinBlock* read_join = joins_.Make(reads_needed, write_phase);
  for (int32_t j = 0; j < n; ++j) {
    const Segment* seg = by_block_scratch_[static_cast<size_t>(j)];
    const bool fully = seg != nullptr && seg->length == unit;
    const BlockLoc dl = layout_->DataLocation(stripe, j);
    if (fully || dl.disk == failed_disk_) {
      continue;
    }
    IssueDiskOp(dl.disk, dl.byte_offset, unit, /*is_write=*/false,
                DiskOpPurpose::kReconstructRead,
                [read_join](bool ok) { read_join->Dec(ok); });
  }
}

void AfraidController::ReadModifyWrite(uint64_t request_id, int64_t stripe,
                                       Span<Segment> segs, JoinBlock* fin) {
  const int32_t sector = cfg_.disk_spec.sector_bytes;

  // The parity span: the union byte range within the stripe unit touched by
  // any segment (parity changes exactly where data changes).
  int32_t span_lo = INT32_MAX;
  int32_t span_hi = 0;
  for (const Segment& seg : segs) {
    span_lo = std::min(span_lo, seg.offset_in_block);
    span_hi = std::max(span_hi, seg.offset_in_block + seg.length);
  }

  // Precompute the xor delta (old ^ new) per parity sector in the span; the
  // exclusive lock makes "old" well defined for the whole group lifetime.
  // Pooled buffer, released when the write phase's join fires (or on a
  // failed read phase).
  const int32_t span_sectors = (span_hi - span_lo) / sector;
  std::vector<uint64_t>* delta = nullptr;
  if (content_ != nullptr) {
    delta = u64_pool_.Acquire();
    delta->assign(static_cast<size_t>(span_sectors), 0);
    for (const Segment& seg : segs) {
      const int32_t first = seg.offset_in_block / sector;
      const int32_t count = seg.length / sector;
      const int64_t logical_first = seg.logical_offset / sector;
      for (int32_t i = 0; i < count; ++i) {
        const uint64_t old_v =
            content_->GetData(stripe, seg.block_in_stripe, first + i);
        const uint64_t new_v = ContentModel::MixTag(request_id, logical_first + i);
        (*delta)[static_cast<size_t>(first + i - span_lo / sector)] ^= old_v ^ new_v;
      }
    }
  }

  auto write_phase = [this, request_id, stripe, segs, span_lo, span_hi, sector,
                      delta, fin](bool reads_ok) {
    if (!reads_ok) {
      if (delta != nullptr) {
        u64_pool_.Release(delta);
      }
      fin->Dec(false);
      return;
    }
    JoinBlock* join = joins_.Make(segs.count + 1, [this, delta, fin](bool ok) {
      if (delta != nullptr) {
        u64_pool_.Release(delta);
      }
      fin->Dec(ok);
    });
    for (const Segment& seg : segs) {
      const BlockLoc dl = layout_->DataLocation(stripe, seg.block_in_stripe);
      const int64_t off = dl.byte_offset + seg.offset_in_block;
      IssueDiskOp(dl.disk, off, seg.length, /*is_write=*/true,
                  DiskOpPurpose::kClientWrite, [this, request_id, seg, join](bool ok) {
                    if (ok) {
                      ApplyDataWrite(request_id, seg);
                    }
                    join->Dec(ok);
                  });
    }
    const BlockLoc pl = layout_->ParityLocation(stripe);
    IssueDiskOp(pl.disk, pl.byte_offset + span_lo, span_hi - span_lo, /*is_write=*/true,
                DiskOpPurpose::kParityWrite,
                [this, stripe, span_lo, sector, delta, join](bool ok) {
                  if (ok && content_ != nullptr) {
                    const int32_t first = span_lo / sector;
                    for (size_t i = 0; i < delta->size(); ++i) {
                      const auto s = first + static_cast<int32_t>(i);
                      content_->SetParity(stripe, s,
                                          content_->GetParity(stripe, s) ^ (*delta)[i]);
                    }
                  }
                  join->Dec(ok);
                });
  };

  // Phase 1: pre-read old data (skipped on controller cache hits) and old
  // parity. These are the extra critical-path I/Os AFRAID eliminates. The
  // need-read table is reused scratch, consumed before this call returns.
  int32_t reads_needed = 1;  // Parity span.
  need_read_scratch_.clear();
  for (const Segment& seg : segs) {
    const int64_t key = BlockKey(stripe, seg.block_in_stripe);
    if (read_cache_.Lookup(key) || staging_.Lookup(key)) {
      continue;  // Old contents already in the controller.
    }
    need_read_scratch_.push_back(&seg);
    ++reads_needed;
  }
  JoinBlock* read_join = joins_.Make(reads_needed, write_phase);
  for (const Segment* seg : need_read_scratch_) {
    const BlockLoc dl = layout_->DataLocation(stripe, seg->block_in_stripe);
    const int64_t off = dl.byte_offset + seg->offset_in_block;
    IssueDiskOp(dl.disk, off, seg->length, /*is_write=*/false,
                DiskOpPurpose::kOldDataRead,
                [read_join](bool ok) { read_join->Dec(ok); });
  }
  const BlockLoc pl = layout_->ParityLocation(stripe);
  IssueDiskOp(pl.disk, pl.byte_offset + span_lo, span_hi - span_lo, /*is_write=*/false,
              DiskOpPurpose::kOldParityRead,
              [read_join](bool ok) { read_join->Dec(ok); });
}

// --- Background parity rebuild ---------------------------------------------------

void AfraidController::TriggerRebuildCheck() {
  if (rebuilding_ || scrub_active_ || reconstruction_active_ || failed_disk_ >= 0 ||
      nvram_.failed() || nvram_.DirtyCount() == 0) {
    return;
  }
  const bool forced = !watchers_.empty() || policy_->ForceRebuild(MakePolicyContext());
  if (forced) {
    BeginRebuildPass();
    RebuildNext();
  }
}

void AfraidController::BeginRebuildPass() {
  assert(!rebuilding_);
  rebuilding_ = true;
  ++rebuild_passes_;
  if (rebuild_probe_) {
    rebuild_probe_.AsyncBegin("rebuild pass", rebuild_passes_, sim_->Now());
  }
}

void AfraidController::EndRebuildPass() {
  assert(rebuilding_);
  rebuilding_ = false;
  if (rebuild_probe_) {
    rebuild_probe_.AsyncEnd("rebuild pass", rebuild_passes_, sim_->Now());
  }
}

void AfraidController::SetRegionClass(int64_t offset, int64_t length,
                                      RedundancyClass cls) {
  assert(length > 0);
  assert(offset >= 0 && offset + length <= layout_->data_capacity_bytes());
  Region r;
  r.first_stripe = layout_->StripeOfOffset(offset);
  r.last_stripe = layout_->StripeOfOffset(offset + length - 1);
  r.cls = cls;
  // Newest-first precedence: prepend.
  regions_.insert(regions_.begin(), r);
}

AfraidController::RedundancyClass AfraidController::RegionClassOf(
    int64_t stripe) const {
  for (const Region& r : regions_) {
    if (stripe >= r.first_stripe && stripe <= r.last_stripe) {
      return r.cls;
    }
  }
  return RedundancyClass::kPolicyDefault;
}

// First dirty band key at/after `from` (wrapping) whose stripe's region
// permits parity maintenance; -1 if none.
int64_t AfraidController::PickRebuildableKey(int64_t from) const {
  // NextDirty wraps, so walking key+1 from the first hit visits every dirty
  // key exactly once in the same order the ordered-set scan used to.
  const int64_t first = nvram_.NextDirty(from);
  if (first < 0) {
    return -1;
  }
  int64_t key = first;
  do {
    if (RegionClassOf(key / cfg_.marks_per_stripe) != RedundancyClass::kNeverParity) {
      return key;
    }
    key = nvram_.NextDirty(key + 1);
  } while (key != first);
  return -1;
}

void AfraidController::RebuildNext() {
  assert(rebuilding_);
  if (failed_disk_ >= 0 || nvram_.failed()) {
    EndRebuildPass();
    return;
  }
  const int64_t key = PickRebuildableKey(rebuild_cursor_);
  if (key < 0) {
    EndRebuildPass();
    return;
  }
  const SimTime step_start = sim_->Now();
  JoinBlock* step_join = joins_.Make(1, [this, key, step_start](bool ok) {
    rebuild_cursor_ = key + 1;
    if (rebuild_probe_) {
      rebuild_probe_.Complete("band", step_start, sim_->Now());
    }
    if (!ok) {
      EndRebuildPass();
      return;
    }
    // Keep the predictor's rebuild-quantum estimate fresh (EWMA).
    rebuild_step_estimate_ns_ +=
        0.2 * (static_cast<double>(sim_->Now() - step_start) -
               rebuild_step_estimate_ns_);
    const PolicyContext ctx = MakePolicyContext();
    const bool keep_going = !watchers_.empty() || policy_->ForceRebuild(ctx) ||
                            (!ArrayBusy() && policy_->RebuildOnIdle(ctx));
    if (keep_going && nvram_.DirtyCount() > 0) {
      RebuildNext();
    } else {
      EndRebuildPass();
    }
  });
  RebuildBand(key, step_join);
}

void AfraidController::RebuildBand(int64_t band_key, JoinBlock* step_join) {
  const int64_t stripe = band_key / cfg_.marks_per_stripe;
  const auto band = static_cast<int32_t>(band_key % cfg_.marks_per_stripe);
  locks_.Acquire(stripe, LockMode::kExclusive, [this, band_key, stripe, band,
                                                step_join] {
    if (!nvram_.IsDirty(band_key)) {
      // A racing RAID 5-mode write refreshed the parity while we waited.
      locks_.Release(stripe, LockMode::kExclusive);
      step_join->Dec(true);
      return;
    }
    const int32_t n = layout_->data_blocks_per_stripe();
    const int64_t unit = layout_->stripe_unit();
    const int64_t band_height = unit / cfg_.marks_per_stripe;
    const int64_t band_rel = band * band_height;  // Offset within the unit.
    const int32_t sector = cfg_.disk_spec.sector_bytes;
    const auto first_sector = static_cast<int32_t>(band_rel / sector);
    const auto band_sectors = static_cast<int32_t>(band_height / sector);

    // Read every data block's band; once all are in, write the recomputed
    // parity band, then release the lock and report to the step join.
    JoinBlock* read_join = joins_.Make(
        n, [this, band_key, stripe, band_rel, band_height, first_sector,
            band_sectors, step_join](bool reads_ok) {
          if (!reads_ok) {
            locks_.Release(stripe, LockMode::kExclusive);
            step_join->Dec(false);
            return;
          }
          const BlockLoc pl = layout_->ParityLocation(stripe);
          IssueDiskOp(pl.disk, pl.byte_offset + band_rel, band_height,
                      /*is_write=*/true,
                      DiskOpPurpose::kRebuildWrite,
                      [this, band_key, stripe, first_sector, band_sectors,
                       step_join](bool ok) {
                        if (ok) {
                          if (content_ != nullptr) {
                            // One batched sweep over the band's sectors in
                            // place of a lookup + reduction per sector.
                            parity_scratch_.resize(
                                static_cast<size_t>(band_sectors));
                            content_->XorOfDataRange(stripe, first_sector,
                                                     band_sectors,
                                                     parity_scratch_.data());
                            content_->SetParityRange(stripe, first_sector,
                                                     band_sectors,
                                                     parity_scratch_.data());
                          }
                          ClearBandKey(band_key);
                          ++stripes_rebuilt_;
                        }
                        locks_.Release(stripe, LockMode::kExclusive);
                        step_join->Dec(ok);
                      });
        });
    for (int32_t j = 0; j < n; ++j) {
      const BlockLoc dl = layout_->DataLocation(stripe, j);
      IssueDiskOp(dl.disk, dl.byte_offset + band_rel, band_height,
                  /*is_write=*/false, DiskOpPurpose::kRebuildRead,
                  [read_join](bool ok) { read_join->Dec(ok); });
    }
  });
}

// --- Paritypoints / quiesce -------------------------------------------------------

void AfraidController::ParityPoint(int64_t offset, int64_t length,
                                   std::function<void()> done) {
  assert(length > 0);
  assert(offset >= 0 && offset + length <= layout_->data_capacity_bytes());
  Watcher w;
  const int64_t first = layout_->StripeOfOffset(offset);
  const int64_t last = layout_->StripeOfOffset(offset + length - 1);
  for (int64_t s = first; s <= last; ++s) {
    if (RegionClassOf(s) == RedundancyClass::kNeverParity) {
      continue;
    }
    for (int32_t b = 0; b < cfg_.marks_per_stripe; ++b) {
      const int64_t key = s * cfg_.marks_per_stripe + b;
      if (nvram_.IsDirty(key)) {
        w.waiting.insert(key);
      }
    }
  }
  if (w.waiting.empty()) {
    sim_->After(0, std::move(done));
    return;
  }
  w.done = std::move(done);
  watchers_.push_back(std::move(w));
  TriggerRebuildCheck();
}

void AfraidController::RebuildAll(std::function<void()> done) {
  Watcher w;
  for (int64_t key : nvram_.DirtyStripes()) {
    if (RegionClassOf(key / cfg_.marks_per_stripe) != RedundancyClass::kNeverParity) {
      w.waiting.insert(key);
    }
  }
  if (w.waiting.empty()) {
    sim_->After(0, std::move(done));
    return;
  }
  w.done = std::move(done);
  watchers_.push_back(std::move(w));
  TriggerRebuildCheck();
}

// --- Failure injection & recovery ---------------------------------------------------

bool AfraidController::FailDisk(int32_t disk) {
  if (disk < 0 || disk >= cfg_.num_disks || failed_disk_ >= 0 ||
      recovering_disk_ >= 0) {
    return false;
  }
  failed_disk_ = disk;
  disks_[static_cast<size_t>(disk)]->Fail();
  if (ctrl_probe_) {
    ctrl_probe_.Instant("fail disk" + std::to_string(disk), sim_->Now());
  }
  return true;
}

bool AfraidController::ReplaceDisk(int32_t disk) {
  if (disk != failed_disk_ || disk < 0) {
    return false;
  }
  disks_[static_cast<size_t>(disk)]->Replace();
  failed_disk_ = -1;
  recovering_disk_ = disk;
  recovery_frontier_ = 0;
  if (ctrl_probe_) {
    ctrl_probe_.Instant("replace disk" + std::to_string(disk), sim_->Now());
  }
  // The replacement mechanism is blank; model its contents as zeroes.
  if (content_ != nullptr) {
    for (int64_t s : content_->TouchedStripes()) {
      for (int32_t j = 0; j < layout_->data_blocks_per_stripe(); ++j) {
        if (layout_->DataDisk(s, j) == disk) {
          for (int32_t i = 0; i < content_->sectors_per_unit(); ++i) {
            content_->SetData(s, j, i, 0);
          }
        }
      }
      if (layout_->ParityDisk(s) == disk) {
        for (int32_t i = 0; i < content_->sectors_per_unit(); ++i) {
          content_->SetParity(s, i, 0);
        }
      }
    }
  }
  return true;
}

bool AfraidController::StartReconstruction(std::function<void()> done) {
  if (recovering_disk_ < 0 || reconstruction_active_) {
    return false;
  }
  reconstruction_active_ = true;
  reconstruction_done_ = std::move(done);
  if (rebuild_probe_) {
    rebuild_probe_.AsyncBegin("reconstruction", 1, sim_->Now());
  }
  ReconstructNextStripe(0);
  return true;
}

void AfraidController::ReconstructNextStripe(int64_t stripe) {
  // Declustered layouts place only some stripes on any given disk; stripes
  // without a unit on the replaced disk need no work (and do not count as
  // rebuilt). Left-symmetric layouts never skip.
  while (stripe < layout_->num_stripes() &&
         !layout_->StripeUsesDisk(stripe, recovering_disk_)) {
    ++stripe;
  }
  if (stripe >= layout_->num_stripes()) {
    reconstruction_active_ = false;
    recovering_disk_ = -1;
    recovery_frontier_ = 0;
    if (rebuild_probe_) {
      rebuild_probe_.AsyncEnd("reconstruction", 1, sim_->Now());
    }
    auto done = std::move(reconstruction_done_);
    if (done) {
      done();
    }
    TriggerRebuildCheck();
    return;
  }
  const int32_t target = recovering_disk_;
  locks_.Acquire(stripe, LockMode::kExclusive, [this, stripe, target] {
    const int32_t n = layout_->data_blocks_per_stripe();
    const int64_t unit = layout_->stripe_unit();
    const int32_t pd = layout_->ParityDisk(stripe);

    auto advance = [this, stripe](bool) {
      recovery_frontier_ = stripe + 1;
      locks_.Release(stripe, LockMode::kExclusive);
      ReconstructNextStripe(stripe + 1);
    };

    if (pd == target) {
      // The replaced disk held this stripe's parity: recompute from data.
      // Note this is lossless even for a dirty stripe.
      const BlockLoc ploc = layout_->ParityLocation(stripe);
      auto write = [this, stripe, unit, ploc, advance](bool ok) {
        if (!ok) {
          advance(false);
          return;
        }
        IssueDiskOp(ploc.disk, ploc.byte_offset, unit, /*is_write=*/true,
                    DiskOpPurpose::kRecoveryWrite, [this, stripe, advance](bool ok2) {
                      if (ok2) {
                        if (content_ != nullptr) {
                          const int32_t spu = content_->sectors_per_unit();
                          parity_scratch_.resize(static_cast<size_t>(spu));
                          content_->XorOfDataAll(stripe, parity_scratch_.data());
                          content_->SetParityRange(stripe, 0, spu,
                                                   parity_scratch_.data());
                        }
                        ClearAllBands(stripe);
                      }
                      advance(ok2);
                    });
      };
      JoinBlock* join = joins_.Make(n, std::move(write));
      for (int32_t j = 0; j < n; ++j) {
        const BlockLoc dl = layout_->DataLocation(stripe, j);
        IssueDiskOp(dl.disk, dl.byte_offset, unit,
                    /*is_write=*/false, DiskOpPurpose::kRecoveryRead,
                    [join](bool ok) { join->Dec(ok); });
      }
      return;
    }

    // The replaced disk held a data block: rebuild it as the xor of the
    // other data blocks and the parity. If the stripe's parity was stale at
    // failure time, the xor is *not* the lost data -- that block is gone
    // (the Section 3.2 small-loss mode); we record it and move on.
    int32_t j_target = -1;
    for (int32_t j = 0; j < n; ++j) {
      if (layout_->DataDisk(stripe, j) == target) {
        j_target = j;
        break;
      }
    }
    assert(j_target >= 0);
    int32_t dirty_bands = 0;
    for (int32_t b = 0; b < cfg_.marks_per_stripe; ++b) {
      if (nvram_.IsDirty(stripe * cfg_.marks_per_stripe + b)) {
        ++dirty_bands;
      }
    }
    const int64_t target_off = layout_->DataLocation(stripe, j_target).byte_offset;
    auto write = [this, stripe, unit, target, target_off, j_target, dirty_bands,
                  advance](bool ok) {
      if (!ok) {
        advance(false);
        return;
      }
      IssueDiskOp(target, target_off, unit, /*is_write=*/true,
                  DiskOpPurpose::kRecoveryWrite,
                  [this, stripe, j_target, dirty_bands, advance](bool ok2) {
                    if (ok2) {
                      if (content_ != nullptr) {
                        for (int32_t i = 0; i < content_->sectors_per_unit(); ++i) {
                          content_->SetData(stripe, j_target, i,
                                            content_->ReconstructData(stripe, j_target, i));
                        }
                      }
                      if (dirty_bands > 0) {
                        // Only the stale bands of the lost block are gone.
                        RecordLoss(LossCause::kStaleParityReconstruction, stripe,
                                   dirty_bands *
                                       (layout_->stripe_unit() / cfg_.marks_per_stripe));
                      }
                      ClearAllBands(stripe);
                    }
                    advance(ok2);
                  });
    };
    JoinBlock* join = joins_.Make(n, std::move(write));  // n-1 data + parity reads.
    for (int32_t j = 0; j < n; ++j) {
      if (j == j_target) {
        continue;
      }
      const BlockLoc dl = layout_->DataLocation(stripe, j);
      IssueDiskOp(dl.disk, dl.byte_offset, unit,
                  /*is_write=*/false, DiskOpPurpose::kRecoveryRead,
                  [join](bool ok) { join->Dec(ok); });
    }
    const BlockLoc ploc = layout_->ParityLocation(stripe);
    IssueDiskOp(ploc.disk, ploc.byte_offset, unit, /*is_write=*/false,
                DiskOpPurpose::kRecoveryRead, [join](bool ok) { join->Dec(ok); });
  });
}

bool AfraidController::FailNvram() {
  nvram_.Fail();
  if (ctrl_probe_) {
    ctrl_probe_.Instant("nvram loss", sim_->Now());
  }
  return true;
}

bool AfraidController::StartFullScrub(std::function<void()> done) {
  if (scrub_active_ || rebuilding_) {
    return false;
  }
  scrub_active_ = true;
  scrub_done_ = std::move(done);
  if (rebuild_probe_) {
    rebuild_probe_.AsyncBegin("scrub", 1, sim_->Now());
  }
  ScrubNextStripe(0);
  return true;
}

void AfraidController::ScrubNextStripe(int64_t stripe) {
  if (stripe >= layout_->num_stripes()) {
    scrub_active_ = false;
    if (rebuild_probe_) {
      rebuild_probe_.AsyncEnd("scrub", 1, sim_->Now());
    }
    nvram_.Repair();
    // Every stripe's parity is fresh: the true unprotected volume is zero
    // again (the marking bits lost in the NVRAM failure are irrelevant now).
    unprot_bytes_.Set(sim_->Now(), 0.0);
    auto done = std::move(scrub_done_);
    if (done) {
      done();
    }
    return;
  }
  locks_.Acquire(stripe, LockMode::kExclusive, [this, stripe] {
    const int32_t n = layout_->data_blocks_per_stripe();
    const int64_t unit = layout_->stripe_unit();
    auto write = [this, stripe, unit](bool ok) {
      auto advance = [this, stripe](bool) {
        locks_.Release(stripe, LockMode::kExclusive);
        ScrubNextStripe(stripe + 1);
      };
      if (!ok) {
        advance(false);
        return;
      }
      const BlockLoc pl = layout_->ParityLocation(stripe);
      IssueDiskOp(pl.disk, pl.byte_offset, unit, /*is_write=*/true,
                  DiskOpPurpose::kRebuildWrite, [this, stripe, advance](bool ok2) {
                    if (ok2 && content_ != nullptr) {
                      const int32_t spu = content_->sectors_per_unit();
                      parity_scratch_.resize(static_cast<size_t>(spu));
                      content_->XorOfDataAll(stripe, parity_scratch_.data());
                      content_->SetParityRange(stripe, 0, spu,
                                               parity_scratch_.data());
                    }
                    advance(ok2);
                  });
    };
    JoinBlock* join = joins_.Make(n, std::move(write));
    for (int32_t j = 0; j < n; ++j) {
      const BlockLoc dl = layout_->DataLocation(stripe, j);
      IssueDiskOp(dl.disk, dl.byte_offset, unit,
                  /*is_write=*/false, DiskOpPurpose::kRebuildRead,
                  [join](bool ok) { join->Dec(ok); });
    }
  });
}

// --- Functional read-back ------------------------------------------------------------

std::vector<uint64_t> AfraidController::ReadLogicalCurrent(int64_t offset,
                                                           int64_t length) const {
  assert(content_ != nullptr);
  const int32_t sector = cfg_.disk_spec.sector_bytes;
  assert(offset % sector == 0 && length % sector == 0);
  std::vector<uint64_t> out;
  out.reserve(static_cast<size_t>(length / sector));
  layout_->SplitInto(offset, length, &read_back_scratch_);
  for (const Segment& seg : read_back_scratch_) {
    const int32_t disk = layout_->DataDisk(seg.stripe, seg.block_in_stripe);
    const bool degraded =
        disk == failed_disk_ ||
        (disk == recovering_disk_ && seg.stripe >= recovery_frontier_);
    const int32_t first = seg.offset_in_block / sector;
    const int32_t count = seg.length / sector;
    for (int32_t i = 0; i < count; ++i) {
      if (degraded) {
        out.push_back(content_->ReconstructData(seg.stripe, seg.block_in_stripe,
                                                first + i));
      } else {
        out.push_back(content_->GetData(seg.stripe, seg.block_in_stripe, first + i));
      }
    }
  }
  return out;
}

}  // namespace afraid
