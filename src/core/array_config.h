// Configuration of a simulated array instance.

#ifndef AFRAID_CORE_ARRAY_CONFIG_H_
#define AFRAID_CORE_ARRAY_CONFIG_H_

#include <cstdint>

#include "array/host_driver.h"
#include "array/layout.h"
#include "disk/disk_spec.h"
#include "sim/time.h"

namespace afraid {

struct ArrayConfig {
  DiskSpec disk_spec = DiskSpec::HpC3325Like();
  int32_t num_disks = 5;                       // N+1.
  int64_t stripe_unit_bytes = 8192;            // S, the paper's default.
  int32_t parity_blocks = 1;                   // 1 = RAID 5 family; 2 = RAID 6.
  // Data placement: classic left-symmetric rotation, or block-design parity
  // declustering (array/decluster.h) for shorter, balanced rebuilds.
  LayoutKind layout = LayoutKind::kLeftSymmetric;
  // Declustered stripe width k (units per stripe, parity included); 0 picks
  // DeclusteredLayout::AutoWidth (about half the array). Ignored for the
  // left-symmetric layout.
  int32_t decluster_width = 0;
  int64_t read_cache_bytes = 256 * 1024;       // Section 4.1.
  int64_t write_staging_bytes = 256 * 1024;    // Write-through staging area.
  SimDuration idle_delay = Milliseconds(100);  // Idleness-detector threshold.
  SimDuration cache_hit_time = MicrosecondsF(200.0);  // Controller-only service.
  // Concurrently active client requests admitted into the array; 0 means
  // "number of physical disks" (the paper's choice).
  int32_t max_active_requests = 0;
  // Host-driver queueing discipline; the paper used CLOOK [Worthington94a].
  HostSched host_sched = HostSched::kClook;
  // Enable the functional content model (tests; costs memory and time).
  bool track_content = false;
  // Reconstruct-write is chosen over read-modify-write when a stripe write
  // touches more than this fraction of the data blocks.
  double reconstruct_write_fraction = 0.5;
  // Sub-stripe marking (Section 5): number of marking bits per stripe. Each
  // bit covers one horizontal band of height stripe_unit/M across all the
  // stripe's blocks, so small writes only unprotect (and later rebuild)
  // 1/M of the stripe. Must divide stripe_unit_bytes/sector_bytes. 1 = the
  // paper's baseline design.
  int32_t marks_per_stripe = 1;
  // Adaptive idleness prediction [Golding95]: when true, an idle-triggered
  // rebuild pass only starts if the predicted remaining idle time fits at
  // least one rebuild step, avoiding collisions with imminent bursts. The
  // paper's baseline ignores the predictor (false).
  bool use_idle_predictor = false;

  int32_t MaxActive() const {
    return max_active_requests > 0 ? max_active_requests : num_disks;
  }
};

}  // namespace afraid

#endif  // AFRAID_CORE_ARRAY_CONFIG_H_
