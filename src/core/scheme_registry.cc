#include "core/scheme_registry.h"

#include <utility>

#include "array/decluster.h"
#include "array/layout.h"
#include "core/afraid_controller.h"
#include "core/mirror_controller.h"
#include "core/parity_log_controller.h"
#include "core/raid6_controller.h"
#include "disk/geometry.h"

namespace afraid {
namespace {

int64_t DiskCapacityBytes(const ArrayConfig& cfg) {
  return DiskGeometry(cfg.disk_spec.zones, cfg.disk_spec.heads,
                      cfg.disk_spec.sector_bytes)
      .CapacityBytes();
}

int64_t ParityCapacity(const ArrayConfig& cfg, int32_t parity_blocks) {
  // Capacity depends on the configured layout: a declustered design exports
  // k-parity data blocks per stripe instead of C-parity.
  return MakeLayout(cfg.layout, cfg.num_disks, cfg.stripe_unit_bytes,
                    DiskCapacityBytes(cfg), parity_blocks, cfg.decluster_width)
      ->data_capacity_bytes();
}

int32_t EvenDisks(int32_t num_disks) {
  const int32_t even = num_disks - (num_disks % 2);
  return even >= 2 ? even : 2;
}

SchemeInfo MakeRaid6Info(const char* name, const char* description,
                         Raid6Mode mode) {
  SchemeInfo info;
  info.name = name;
  info.description = description;
  info.parity_blocks = 2;
  info.avail_scheme = RedundancyScheme::kRaid5;
  info.create = [mode](const SchemeContext& ctx) -> std::unique_ptr<ArrayScheme> {
    return std::make_unique<Raid6Controller>(ctx.sim, ctx.config, mode);
  };
  info.data_capacity = [](const ArrayConfig& cfg) { return ParityCapacity(cfg, 2); };
  return info;
}

std::vector<SchemeInfo> BuiltIns() {
  std::vector<SchemeInfo> schemes;
  {
    SchemeInfo info;
    info.name = "afraid";
    info.description =
        "AFRAID: policy-driven deferred parity over a RAID 5 layout";
    info.parity_blocks = 1;
    info.uses_policy = true;
    info.avail_scheme = RedundancyScheme::kAfraid;
    info.create = [](const SchemeContext& ctx) -> std::unique_ptr<ArrayScheme> {
      return std::make_unique<AfraidController>(ctx.sim, ctx.config,
                                                MakePolicy(ctx.policy), ctx.avail,
                                                ctx.probe);
    };
    info.data_capacity = [](const ArrayConfig& cfg) {
      return ParityCapacity(cfg, 1);
    };
    schemes.push_back(std::move(info));
  }
  schemes.push_back(MakeRaid6Info(
      "raid6", "RAID 6: synchronous P+Q parity in the write's critical path",
      Raid6Mode::kSynchronous));
  schemes.push_back(MakeRaid6Info(
      "raid6-deferQ", "RAID 6 with synchronous P and idle-deferred Q",
      Raid6Mode::kDeferQ));
  schemes.push_back(MakeRaid6Info(
      "raid6-deferPQ", "RAID 6 with both parities deferred (AFRAID-style)",
      Raid6Mode::kDeferBoth));
  {
    SchemeInfo info;
    info.name = "parity-log";
    info.description =
        "Parity logging [Stodolsky93]: parity-update images staged to a log";
    info.parity_blocks = 1;
    info.avail_scheme = RedundancyScheme::kRaid5;
    info.create = [](const SchemeContext& ctx) -> std::unique_ptr<ArrayScheme> {
      return std::make_unique<ParityLogController>(ctx.sim, ctx.config,
                                                   ParityLogConfig{});
    };
    info.data_capacity = [](const ArrayConfig& cfg) {
      // The log region at the end of each disk is not client-visible.
      const int64_t cap = DiskCapacityBytes(cfg);
      const int64_t usable =
          cap - ParityLogConfig{}.FittedTo(cap).log_region_bytes;
      return MakeLayout(cfg.layout, cfg.num_disks, cfg.stripe_unit_bytes,
                        usable, 1, cfg.decluster_width)
          ->data_capacity_bytes();
    };
    schemes.push_back(std::move(info));
  }
  {
    SchemeInfo info;
    info.name = "mirror";
    info.description =
        "Mirrored striping (RAID 1/0) with shortest-positioning-time reads";
    info.parity_blocks = 0;
    info.requires_even_disks = true;
    info.avail_scheme = RedundancyScheme::kRaid5;
    info.create = [](const SchemeContext& ctx) -> std::unique_ptr<ArrayScheme> {
      return std::make_unique<MirrorController>(ctx.sim, ctx.config);
    };
    info.data_capacity = [](const ArrayConfig& cfg) {
      // Mirroring stripes plainly over the columns; parity declustering does
      // not apply (there is no parity to decluster), so the layout knob is
      // ignored here.
      return StripeLayout(EvenDisks(cfg.num_disks) / 2, cfg.stripe_unit_bytes,
                          DiskCapacityBytes(cfg), 0)
          .data_capacity_bytes();
    };
    schemes.push_back(std::move(info));
  }
  return schemes;
}

std::vector<SchemeInfo>& Schemes() {
  static std::vector<SchemeInfo>* schemes = new std::vector<SchemeInfo>(BuiltIns());
  return *schemes;
}

}  // namespace

void SchemeRegistry::Register(SchemeInfo info) {
  for (SchemeInfo& existing : Schemes()) {
    if (existing.name == info.name) {
      existing = std::move(info);
      return;
    }
  }
  Schemes().push_back(std::move(info));
}

const SchemeInfo* SchemeRegistry::Find(const std::string& name) {
  for (const SchemeInfo& info : Schemes()) {
    if (info.name == name) {
      return &info;
    }
  }
  return nullptr;
}

std::vector<std::string> SchemeRegistry::List() {
  std::vector<std::string> names;
  names.reserve(Schemes().size());
  for (const SchemeInfo& info : Schemes()) {
    names.push_back(info.name);
  }
  return names;
}

ArrayConfig SchemeRegistry::Normalize(const std::string& name,
                                      const ArrayConfig& config) {
  ArrayConfig cfg = config;
  const SchemeInfo* info = Find(name);
  if (info == nullptr) {
    return cfg;
  }
  cfg.parity_blocks = info->parity_blocks;
  if (info->requires_even_disks) {
    cfg.num_disks = EvenDisks(cfg.num_disks);
  }
  return cfg;
}

int64_t SchemeRegistry::DataCapacityBytes(const std::string& name,
                                          const ArrayConfig& config) {
  const SchemeInfo* info = Find(name);
  if (info == nullptr) {
    return 0;
  }
  return info->data_capacity(Normalize(name, config));
}

std::unique_ptr<ArrayScheme> SchemeRegistry::Create(const std::string& name,
                                                    const SchemeContext& ctx) {
  const SchemeInfo* info = Find(name);
  if (info == nullptr) {
    return nullptr;
  }
  SchemeContext normalized = ctx;
  normalized.config = Normalize(name, ctx.config);
  return info->create(normalized);
}

RedundancyScheme SchemeRegistry::AvailSchemeFor(const std::string& name,
                                                const PolicySpec& policy) {
  const SchemeInfo* info = Find(name);
  if (info == nullptr) {
    return RedundancyScheme::kRaid5;
  }
  return info->uses_policy ? SchemeFor(policy) : info->avail_scheme;
}

}  // namespace afraid
