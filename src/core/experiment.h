// The experiment harness: replay a trace against a configured array and
// collect the SimReport. This is the exact loop behind every table and
// figure reproduction in bench/.
//
// The primary entry point is the Experiment builder:
//
//   SimReport rep = Experiment(config)
//                       .Policy(spec)
//                       .Trace(trace)          // or .Workload(params, n, d)
//                       .Observe(opts)         // optional
//                       .Run();
//
// Observe() turns on the src/obs/ layer for the run: a Chrome-trace timeline
// of every component, periodic metric snapshots, and a run directory with
// report.json / metrics.jsonl / trace.json. Observability never perturbs the
// simulation: snapshots are taken between simulator events and the trace is
// written from completion callbacks, so an observed run executes the exact
// same event trajectory -- and produces the bit-identical SimReport -- as an
// unobserved one.

#ifndef AFRAID_CORE_EXPERIMENT_H_
#define AFRAID_CORE_EXPERIMENT_H_

#include <cstdint>
#include <string>

#include "avail/model.h"
#include "core/array_config.h"
#include "core/policy.h"
#include "core/report.h"
#include "trace/trace.h"
#include "trace/trace_stream.h"
#include "trace/workload_gen.h"

namespace afraid {

// Derives the availability-model parameters matching an array configuration
// (N, S, Vdisk from the config; failure-rate assumptions from Table 1).
AvailabilityParams AvailabilityParamsFor(const ArrayConfig& config);

// What Experiment::Observe() records.
struct ObserveOptions {
  // Run directory for report.json / metrics.jsonl / trace.json. Empty keeps
  // everything in memory (useful for tests that inspect the collectors).
  std::string artifacts_dir;
  bool trace = true;    // Chrome Trace Event timeline.
  bool metrics = true;  // Periodic metric snapshots.
  SimDuration metrics_interval = Milliseconds(100);
};

// Accounting from a streamed replay (Experiment::TraceFile): how much the
// fixed-memory pipeline actually held. Peaks depend on chunk size and the
// in-flight window, never on trace length.
struct StreamStats {
  int64_t chunks = 0;           // Non-empty chunks compiled and replayed.
  uint64_t records = 0;         // Trace records ingested.
  size_t peak_plan_bytes = 0;   // High-water mark of all plan-slot arrays.
  size_t peak_buffer_bytes = 0; // High-water mark of the reader's buffers.
  int32_t ring_slots = 0;       // Plan slots the ring converged to.
};

class Experiment {
 public:
  explicit Experiment(const ArrayConfig& config) : cfg_(config) {}

  // Array organization to run, by registry name (src/core/scheme_registry.h);
  // defaults to "afraid". The config is normalised for the scheme (parity
  // blocks, mirror disk-count rounding) when Run() constructs the array.
  Experiment& Scheme(const std::string& name) {
    scheme_ = name;
    return *this;
  }

  // Parity-update policy; consulted only by policy-driven schemes ("afraid").
  Experiment& Policy(const PolicySpec& spec) {
    spec_ = spec;
    return *this;
  }

  // Replays `trace` open-loop. The caller keeps it alive through Run().
  Experiment& Trace(const afraid::Trace& trace) {
    trace_ = &trace;
    have_workload_ = false;
    trace_file_.clear();
    return *this;
  }

  // Streams the trace file through the chunked plan compiler
  // (array/plan_stream.h): O(chunk) memory in the trace length, and a
  // byte-identical trajectory -- per-request latencies and final report --
  // to loading the same file and replaying it via Trace(). Check
  // trace_status() after Run(); on a parse/file error the report covers the
  // prefix replayed before the error.
  Experiment& TraceFile(const std::string& path,
                        const StreamOptions& opts = StreamOptions()) {
    trace_file_ = path;
    stream_opts_ = opts;
    trace_ = nullptr;
    have_workload_ = false;
    return *this;
  }

  // Outcome of the TraceFile() ingest (Ok for Trace()/Workload() runs).
  const TraceStatus& trace_status() const { return trace_status_; }

  // Memory/throughput accounting of the last TraceFile() run.
  const StreamStats& stream_stats() const { return stream_stats_; }

  // Generates the synthetic workload, sized to the array's client-visible
  // capacity, and replays it. `max_requests` bounds harness run time.
  Experiment& Workload(const WorkloadParams& params, uint64_t max_requests,
                       SimDuration max_duration) {
    workload_ = params;
    max_requests_ = max_requests;
    max_duration_ = max_duration;
    have_workload_ = true;
    trace_ = nullptr;
    trace_file_.clear();
    return *this;
  }

  Experiment& Observe(const ObserveOptions& opts) {
    obs_ = opts;
    observe_ = true;
    return *this;
  }

  // Builds the array, runs every request to completion (background rebuilds
  // triggered by trailing idleness included) and returns the report. With
  // Observe(), also writes the run directory. Requires Trace() or Workload().
  SimReport Run();

 private:
  ArrayConfig cfg_;
  std::string scheme_ = "afraid";
  PolicySpec spec_{};
  const afraid::Trace* trace_ = nullptr;
  std::string trace_file_;
  StreamOptions stream_opts_{};
  TraceStatus trace_status_{};
  StreamStats stream_stats_{};
  bool have_workload_ = false;
  WorkloadParams workload_{};
  uint64_t max_requests_ = 0;
  SimDuration max_duration_ = 0;
  bool observe_ = false;
  ObserveOptions obs_{};
};

}  // namespace afraid

#endif  // AFRAID_CORE_EXPERIMENT_H_
