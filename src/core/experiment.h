// The experiment harness: replay a trace against a configured array and
// collect the SimReport. This is the exact loop behind every table and
// figure reproduction in bench/.

#ifndef AFRAID_CORE_EXPERIMENT_H_
#define AFRAID_CORE_EXPERIMENT_H_

#include <cstdint>
#include <string>

#include "avail/model.h"
#include "core/array_config.h"
#include "core/policy.h"
#include "core/report.h"
#include "trace/trace.h"
#include "trace/workload_gen.h"

namespace afraid {

// Derives the availability-model parameters matching an array configuration
// (N, S, Vdisk from the config; failure-rate assumptions from Table 1).
AvailabilityParams AvailabilityParamsFor(const ArrayConfig& config);

// Replays `trace` open-loop against a fresh array built from `config` with
// the policy described by `spec`. Runs until every request has completed
// (background rebuilds may still be pending at the end, as in the paper:
// measurement covers the trace interval).
SimReport RunExperiment(const ArrayConfig& config, const PolicySpec& spec,
                        const Trace& trace);

// Convenience: generate the named synthetic workload sized to the array and
// run it. `max_requests` bounds harness run time.
SimReport RunWorkload(const ArrayConfig& config, const PolicySpec& spec,
                      const WorkloadParams& workload, uint64_t max_requests,
                      SimDuration max_duration);

}  // namespace afraid

#endif  // AFRAID_CORE_EXPERIMENT_H_
