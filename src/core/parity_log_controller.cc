#include "core/parity_log_controller.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "array/decluster.h"
#include "disk/geometry.h"

namespace afraid {

ParityLogConfig ParityLogConfig::FittedTo(int64_t disk_capacity_bytes) const {
  ParityLogConfig fitted = *this;
  fitted.log_region_bytes =
      std::min(fitted.log_region_bytes, disk_capacity_bytes / 4);
  fitted.nvram_buffer_bytes =
      std::min(fitted.nvram_buffer_bytes, fitted.log_region_bytes / 4);
  return fitted;
}

namespace {

int64_t PlDiskCapacity(const ArrayConfig& config) {
  return DiskGeometry(config.disk_spec.zones, config.disk_spec.heads,
                      config.disk_spec.sector_bytes)
      .CapacityBytes();
}

}  // namespace

ParityLogController::ParityLogController(Simulator* sim, const ArrayConfig& config,
                                         const ParityLogConfig& log_config)
    : sim_(sim),
      cfg_(config),
      log_cfg_(log_config.FittedTo(PlDiskCapacity(config))),
      layout_(MakeLayout(config.layout, config.num_disks,
                         config.stripe_unit_bytes,
                         PlDiskCapacity(config) - log_cfg_.log_region_bytes,
                         /*parity_blocks=*/1, config.decluster_width)) {
  assert(log_cfg_.log_region_bytes > log_cfg_.nvram_buffer_bytes);
  for (int32_t d = 0; d < cfg_.num_disks; ++d) {
    disks_.push_back(std::make_unique<DiskModel>(sim_, cfg_.disk_spec, d));
  }
  if (cfg_.track_content) {
    content_ = std::make_unique<ContentModel>(
        layout_->data_blocks_per_stripe(), /*parity_blocks=*/1,
        static_cast<int32_t>(cfg_.stripe_unit_bytes / cfg_.disk_spec.sector_bytes));
  }
}

ParityLogController::~ParityLogController() = default;

void ParityLogController::IssueDiskOp(int32_t disk, int64_t byte_offset,
                                      int64_t length, bool is_write,
                                      DiskDone done) {
  const int32_t sector = cfg_.disk_spec.sector_bytes;
  assert(byte_offset % sector == 0 && length > 0 && length % sector == 0);
  ++disk_ops_;
  DiskOp op;
  op.lba = byte_offset / sector;
  op.sectors = static_cast<int32_t>(length / sector);
  op.is_write = is_write;
  disks_[static_cast<size_t>(disk)]->Submit(
      op, [done = std::move(done)](const DiskOpResult& r) mutable { done(r.ok); });
}

void ParityLogController::Submit(const ClientRequest& request, RequestDone done) {
  assert(request.size > 0);
  assert(request.offset >= 0 &&
         request.offset + request.size <= layout_->data_capacity_bytes());
  if (request.is_write) {
    DoWrite(request, std::move(done));
  } else {
    DoRead(request, std::move(done));
  }
}

void ParityLogController::DoRead(const ClientRequest& r, RequestDone done) {
  // Planned requests carry their precompiled Split() (see array/plan.h).
  Span<Segment> segs{r.plan_segs, r.plan_seg_count};
  if (r.plan_segs == nullptr) {
    layout_->SplitInto(r.offset, r.size, &split_scratch_);
    segs = Span<Segment>{split_scratch_.data(),
                         static_cast<int32_t>(split_scratch_.size())};
  }
  JoinBlock* join = joins_.Make(
      segs.count, [done = std::move(done)](bool) mutable { done(); });
  for (const Segment& seg : segs) {
    const BlockLoc dl = layout_->DataLocation(seg.stripe, seg.block_in_stripe);
    if (DiskUnavailable(dl.disk, seg.stripe)) {
      DegradedReadSegment(seg, join);
      continue;
    }
    IssueDiskOp(dl.disk, dl.byte_offset + seg.offset_in_block, seg.length,
                /*is_write=*/false, [join](bool) { join->Dec(true); });
  }
}

void ParityLogController::DegradedReadSegment(const Segment& seg, JoinBlock* parent) {
  locks_.Acquire(seg.stripe, LockMode::kExclusive, [this, seg, parent] {
    const int64_t stripe = seg.stripe;
    const BlockLoc tl = layout_->DataLocation(stripe, seg.block_in_stripe);
    if (!DiskUnavailable(tl.disk, stripe)) {
      // The reconstruction sweep passed this stripe while we waited on the
      // lock: plain read.
      IssueDiskOp(tl.disk, tl.byte_offset + seg.offset_in_block, seg.length,
                  /*is_write=*/false, [this, stripe, parent](bool) {
                    locks_.Release(stripe, LockMode::kExclusive);
                    parent->Dec(true);
                  });
      return;
    }
    // n-1 surviving data blocks plus the parity block. The pending images
    // (NVRAM + log, both durable) make the parity information live, so the
    // reconstructed bytes are exactly the client's data: no loss mode here.
    const int32_t n = layout_->data_blocks_per_stripe();
    JoinBlock* join = joins_.Make(n, [this, stripe, parent](bool) {
      locks_.Release(stripe, LockMode::kExclusive);
      parent->Dec(true);
    });
    for (int32_t j = 0; j < n; ++j) {
      if (j == seg.block_in_stripe) {
        continue;
      }
      const BlockLoc dl = layout_->DataLocation(stripe, j);
      IssueDiskOp(dl.disk, dl.byte_offset + seg.offset_in_block, seg.length,
                  /*is_write=*/false, [join](bool) { join->Dec(true); });
    }
    const BlockLoc pl = layout_->ParityLocation(stripe);
    IssueDiskOp(pl.disk, pl.byte_offset + seg.offset_in_block, seg.length,
                /*is_write=*/false,
                [join](bool) { join->Dec(true); });
  });
}

void ParityLogController::DoWrite(const ClientRequest& r, RequestDone done) {
  Span<Segment> segs{r.plan_segs, r.plan_seg_count};
  if (r.plan_segs == nullptr) {
    layout_->SplitInto(r.offset, r.size, &split_scratch_);
    segs = Span<Segment>{split_scratch_.data(),
                         static_cast<int32_t>(split_scratch_.size())};
  }
  JoinBlock* join = joins_.Make(
      segs.count, [done = std::move(done)](bool) mutable { done(); });
  for (const Segment& seg : segs) {
    if (log_used_ >= log_cfg_.log_region_bytes) {
      // The log is hard-full: "the pending parity updates must be applied
      // immediately, interrupting foreground processing to do so." The
      // write resumes as soon as a replay batch reclaims space.
      ++hard_stalls_;
      stalled_.push_back(StalledWrite{r.id, seg, join});
    } else {
      WriteSegment(r.id, seg, join);
    }
  }
}

void ParityLogController::UpdateContentForWrite(uint64_t request_id,
                                                const Segment& seg) {
  if (content_ == nullptr) {
    return;
  }
  const int32_t sector = cfg_.disk_spec.sector_bytes;
  const int32_t first = seg.offset_in_block / sector;
  const int32_t count = seg.length / sector;
  const int64_t logical_first = seg.logical_offset / sector;
  for (int32_t i = 0; i < count; ++i) {
    content_->SetData(seg.stripe, seg.block_in_stripe, first + i,
                      ContentModel::MixTag(request_id, logical_first + i));
  }
  // The images are durable, so the parity information is always live: the
  // content model tracks the post-replay parity directly.
  parity_scratch_.resize(static_cast<size_t>(count));
  content_->XorOfDataRange(seg.stripe, first, count, parity_scratch_.data());
  content_->SetParityRange(seg.stripe, first, count, parity_scratch_.data());
}

void ParityLogController::WriteSegment(uint64_t request_id, const Segment& seg,
                                       JoinBlock* join) {
  const int64_t stripe = seg.stripe;
  locks_.Acquire(stripe, LockMode::kExclusive, [this, request_id, seg, stripe,
                                                join] {
    const BlockLoc dl = layout_->DataLocation(stripe, seg.block_in_stripe);
    const int64_t off = dl.byte_offset + seg.offset_in_block;
    if (DiskUnavailable(dl.disk, stripe)) {
      // The data disk is out: until the sweep restores the block, the new
      // data exists only as its (durable) parity-update image. No physical
      // RMW happens.
      sim_->After(0, [this, request_id, seg, join] {
        UpdateContentForWrite(request_id, seg);
        AppendImages(seg.length);
        locks_.Release(seg.stripe, LockMode::kExclusive);
        join->Dec(true);
      });
      return;
    }
    // Read-modify-write on the data block only; the parity-update image
    // (old xor new) goes to the NVRAM log buffer instead of the parity disk.
    IssueDiskOp(dl.disk, off, seg.length, /*is_write=*/false,
                [this, request_id, seg, join](bool) {
                  const BlockLoc wl =
                      layout_->DataLocation(seg.stripe, seg.block_in_stripe);
                  const int64_t o = wl.byte_offset + seg.offset_in_block;
                  IssueDiskOp(wl.disk, o, seg.length, /*is_write=*/true,
                              [this, request_id, seg, join](bool) {
                                UpdateContentForWrite(request_id, seg);
                                AppendImages(seg.length);
                                locks_.Release(seg.stripe, LockMode::kExclusive);
                                join->Dec(true);
                              });
                });
  });
}

void ParityLogController::AppendImages(int64_t bytes) {
  nvram_used_ += bytes;
  if (nvram_used_ >= log_cfg_.nvram_buffer_bytes) {
    FlushBuffer();
  }
}

void ParityLogController::FlushBuffer() {
  // One large sequential write of the buffered images into the log region
  // (this is where parity logging earns its efficiency: the per-image cost
  // is a fraction of a rotation instead of a full RMW).
  const int64_t flush_bytes = nvram_used_;
  nvram_used_ = 0;
  ++log_flushes_;
  const int64_t log_start = layout_->DiskDataBytes();
  const int64_t region_per_disk = log_cfg_.log_region_bytes;
  const int64_t offset_in_region =
      (log_used_ / cfg_.num_disks) % std::max<int64_t>(
          region_per_disk - flush_bytes, 1);
  int32_t disk = log_disk_cursor_;
  log_disk_cursor_ = (log_disk_cursor_ + 1) % cfg_.num_disks;
  if (disk == failed_disk_) {
    // Log segments rotate; the dead disk's slot just moves to the next one
    // (at most one failure at a time, so a single skip suffices).
    disk = log_disk_cursor_;
    log_disk_cursor_ = (log_disk_cursor_ + 1) % cfg_.num_disks;
  }
  const int32_t sector = cfg_.disk_spec.sector_bytes;
  const int64_t aligned = std::max<int64_t>(
      sector, (flush_bytes / sector) * sector);
  IssueDiskOp(disk, log_start + (offset_in_region / sector) * sector, aligned,
              /*is_write=*/true, [](bool) {});
  log_used_ += flush_bytes;
  // Background replay starts at the high-water mark, well before the log is
  // hard-full, so foreground writes rarely stall outright.
  if (!replaying_ &&
      log_used_ >= static_cast<int64_t>(
                       kHighWater * static_cast<double>(log_cfg_.log_region_bytes))) {
    StartReplay();
  }
}

void ParityLogController::StartReplay() {
  replaying_ = true;
  ++log_replays_;
  ReplayNextBatch(log_used_);
}

void ParityLogController::ReplayNextBatch(int64_t remaining_bytes) {
  (void)remaining_bytes;
  // Stop once drained to the low-water mark: the array returns to pure
  // foreground service and the log refills before the next replay.
  if (log_used_ <= static_cast<int64_t>(
                       kLowWater * static_cast<double>(log_cfg_.log_region_bytes))) {
    replaying_ = false;
    return;
  }
  const int64_t unit = layout_->stripe_unit();
  const int64_t batch_bytes = std::min<int64_t>(
      log_used_, static_cast<int64_t>(log_cfg_.replay_batch_stripes) * unit);
  const int64_t log_start = layout_->DiskDataBytes();
  const int32_t sector = cfg_.disk_spec.sector_bytes;

  // One big sequential log read, then parity read+write pairs for each
  // affected stripe unit, spread over the disks round-robin. Foreground
  // requests share the disks FCFS -- this is the Section 2 "interference".
  const auto parity_units = static_cast<int32_t>((batch_bytes + unit - 1) / unit);
  auto after_log = [this, parity_units, unit, batch_bytes](bool) {
    JoinBlock* join = joins_.Make(parity_units, [this, batch_bytes](bool) {
      // The batch's log space is reclaimed: resume any hard-stalled writes.
      log_used_ = std::max<int64_t>(0, log_used_ - batch_bytes);
      runnable_scratch_.swap(stalled_);
      for (const StalledWrite& w : runnable_scratch_) {
        WriteSegment(w.request_id, w.seg, w.join);
      }
      runnable_scratch_.clear();
      ReplayNextBatch(log_used_);
    });
    for (int32_t i = 0; i < parity_units; ++i) {
      // Representative parity locations spread across stripes and disks.
      const int64_t stripe =
          (replay_position_ + i) % std::max<int64_t>(layout_->num_stripes(), 1);
      const BlockLoc pl = layout_->ParityLocation(stripe);
      if (pl.disk == failed_disk_) {
        // The stripe's parity lives on the dead disk; the image stays
        // applied only logically until the sweep rewrites the block.
        sim_->After(0, [join] { join->Dec(true); });
        continue;
      }
      IssueDiskOp(pl.disk, pl.byte_offset, unit, /*is_write=*/false,
                  [this, pl, unit, join](bool) {
                    IssueDiskOp(pl.disk, pl.byte_offset, unit, /*is_write=*/true,
                                [join](bool) { join->Dec(true); });
                  });
    }
    replay_position_ += parity_units;
  };
  const int64_t aligned = std::max<int64_t>(
      sector, (batch_bytes / sector) * sector);
  const int32_t log_disk = log_disk_cursor_ == failed_disk_
                               ? (log_disk_cursor_ + 1) % cfg_.num_disks
                               : log_disk_cursor_;
  IssueDiskOp(log_disk, log_start, aligned, /*is_write=*/false,
              std::move(after_log));
}

// --- Failure machinery ------------------------------------------------------------

bool ParityLogController::FailDisk(int32_t disk) {
  if (disk < 0 || disk >= cfg_.num_disks || failed_disk_ >= 0 ||
      recovering_disk_ >= 0) {
    return false;
  }
  failed_disk_ = disk;
  disks_[static_cast<size_t>(disk)]->Fail();
  return true;
}

bool ParityLogController::ReplaceDisk(int32_t disk) {
  if (disk != failed_disk_ || disk < 0) {
    return false;
  }
  disks_[static_cast<size_t>(disk)]->Replace();
  failed_disk_ = -1;
  recovering_disk_ = disk;
  recovery_frontier_ = 0;
  // The replacement mechanism is blank; model its contents as zeroes.
  if (content_ != nullptr) {
    for (int64_t s : content_->TouchedStripes()) {
      for (int32_t j = 0; j < layout_->data_blocks_per_stripe(); ++j) {
        if (layout_->DataDisk(s, j) == disk) {
          for (int32_t i = 0; i < content_->sectors_per_unit(); ++i) {
            content_->SetData(s, j, i, 0);
          }
        }
      }
      if (layout_->ParityDisk(s) == disk) {
        for (int32_t i = 0; i < content_->sectors_per_unit(); ++i) {
          content_->SetParity(s, i, 0);
        }
      }
    }
  }
  return true;
}

bool ParityLogController::StartReconstruction(std::function<void()> done) {
  if (recovering_disk_ < 0 || reconstruction_active_) {
    return false;
  }
  reconstruction_active_ = true;
  reconstruction_done_ = std::move(done);
  ReconstructNextStripe(0);
  return true;
}

void ParityLogController::ReconstructNextStripe(int64_t stripe) {
  // Declustered layouts leave some stripes entirely off the recovering disk;
  // they need no sweep work (left-symmetric never skips: every stripe uses
  // every disk).
  while (stripe < layout_->num_stripes() &&
         !layout_->StripeUsesDisk(stripe, recovering_disk_)) {
    ++stripe;
  }
  if (stripe >= layout_->num_stripes()) {
    reconstruction_active_ = false;
    recovering_disk_ = -1;
    recovery_frontier_ = 0;
    auto done = std::move(reconstruction_done_);
    reconstruction_done_ = nullptr;
    if (done) {
      done();
    }
    return;
  }
  locks_.Acquire(stripe, LockMode::kExclusive, [this, stripe] {
    const int32_t target = recovering_disk_;
    const int32_t n = layout_->data_blocks_per_stripe();
    const int64_t unit = layout_->stripe_unit();
    const BlockLoc pl = layout_->ParityLocation(stripe);
    int32_t j_target = -1;
    for (int32_t j = 0; j < n; ++j) {
      if (layout_->DataDisk(stripe, j) == target) {
        j_target = j;
        break;
      }
    }
    const int64_t target_off =
        j_target >= 0 ? layout_->DataLocation(stripe, j_target).byte_offset
                      : pl.byte_offset;
    // Logical recovery first, under the lock. Parity is always live (the
    // images are durable), so both directions are exact: no loss mode.
    if (content_ != nullptr) {
      const int32_t spu = content_->sectors_per_unit();
      if (j_target >= 0) {
        for (int32_t s = 0; s < spu; ++s) {
          content_->SetData(stripe, j_target, s,
                            content_->ReconstructData(stripe, j_target, s));
        }
      } else {
        parity_scratch_.resize(static_cast<size_t>(spu));
        content_->XorOfDataAll(stripe, parity_scratch_.data());
        content_->SetParityRange(stripe, 0, spu, parity_scratch_.data());
      }
    }
    auto advance = [this, stripe](bool) {
      ++stripes_rebuilt_;
      recovery_frontier_ = stripe + 1;
      locks_.Release(stripe, LockMode::kExclusive);
      ReconstructNextStripe(stripe + 1);
    };
    auto write_phase = [this, unit, target, target_off, advance](bool) {
      IssueDiskOp(target, target_off, unit, /*is_write=*/true,
                  [advance](bool) mutable { advance(true); });
    };
    // n reads either way: n-1 survivors + parity for a data target, all n
    // data blocks for a parity target.
    JoinBlock* read_join = joins_.Make(n, std::move(write_phase));
    for (int32_t j = 0; j < n; ++j) {
      if (j == j_target) {
        continue;
      }
      const BlockLoc dl = layout_->DataLocation(stripe, j);
      IssueDiskOp(dl.disk, dl.byte_offset, unit,
                  /*is_write=*/false, [read_join](bool) { read_join->Dec(true); });
    }
    if (j_target >= 0) {
      IssueDiskOp(pl.disk, pl.byte_offset, unit, /*is_write=*/false,
                  [read_join](bool) { read_join->Dec(true); });
    }
  });
}

SchemeState ParityLogController::State() const {
  SchemeState st;
  st.failed_disk = failed_disk_;
  st.recovering_disk = recovering_disk_;
  st.reconstruction_active = reconstruction_active_;
  st.rebuild_active = replaying_;
  st.dirty_marks = PendingImagesBytes();
  st.parity_lag_bytes = 0.0;  // Full redundancy at all times.
  return st;
}

SchemeStats ParityLogController::Stats() const {
  SchemeStats s;
  s.rebuild_passes = log_replays_;
  s.stripes_rebuilt = stripes_rebuilt_;
  s.disk_ops_total = disk_ops_;
  return s;
}

}  // namespace afraid
