#include "core/parity_log_controller.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "disk/geometry.h"

namespace afraid {

ParityLogController::ParityLogController(Simulator* sim, const ArrayConfig& config,
                                         const ParityLogConfig& log_config)
    : sim_(sim),
      cfg_(config),
      log_cfg_(log_config),
      layout_(config.num_disks, config.stripe_unit_bytes,
              DiskGeometry(config.disk_spec.zones, config.disk_spec.heads,
                           config.disk_spec.sector_bytes)
                      .CapacityBytes() -
                  log_config.log_region_bytes,
              /*parity_blocks=*/1) {
  assert(log_cfg_.log_region_bytes > log_cfg_.nvram_buffer_bytes);
  for (int32_t d = 0; d < cfg_.num_disks; ++d) {
    disks_.push_back(std::make_unique<DiskModel>(sim_, cfg_.disk_spec, d));
  }
}

ParityLogController::~ParityLogController() = default;

void ParityLogController::IssueDiskOp(int32_t disk, int64_t byte_offset,
                                      int64_t length, bool is_write,
                                      DiskDone done) {
  const int32_t sector = cfg_.disk_spec.sector_bytes;
  assert(byte_offset % sector == 0 && length > 0 && length % sector == 0);
  ++disk_ops_;
  DiskOp op;
  op.lba = byte_offset / sector;
  op.sectors = static_cast<int32_t>(length / sector);
  op.is_write = is_write;
  disks_[static_cast<size_t>(disk)]->Submit(
      op, [done = std::move(done)](const DiskOpResult& r) mutable { done(r.ok); });
}

void ParityLogController::Submit(const ClientRequest& request, RequestDone done) {
  assert(request.size > 0);
  assert(request.offset >= 0 &&
         request.offset + request.size <= layout_.data_capacity_bytes());
  if (request.is_write) {
    DoWrite(request, std::move(done));
  } else {
    DoRead(request, std::move(done));
  }
}

void ParityLogController::DoRead(const ClientRequest& r, RequestDone done) {
  // Planned requests carry their precompiled Split() (see array/plan.h).
  Span<Segment> segs{r.plan_segs, r.plan_seg_count};
  if (r.plan_segs == nullptr) {
    layout_.SplitInto(r.offset, r.size, &split_scratch_);
    segs = Span<Segment>{split_scratch_.data(),
                         static_cast<int32_t>(split_scratch_.size())};
  }
  JoinBlock* join = joins_.Make(
      segs.count, [done = std::move(done)](bool) mutable { done(); });
  for (const Segment& seg : segs) {
    IssueDiskOp(layout_.DataDisk(seg.stripe, seg.block_in_stripe),
                seg.stripe * layout_.stripe_unit() + seg.offset_in_block, seg.length,
                /*is_write=*/false, [join](bool) { join->Dec(true); });
  }
}

void ParityLogController::DoWrite(const ClientRequest& r, RequestDone done) {
  Span<Segment> segs{r.plan_segs, r.plan_seg_count};
  if (r.plan_segs == nullptr) {
    layout_.SplitInto(r.offset, r.size, &split_scratch_);
    segs = Span<Segment>{split_scratch_.data(),
                         static_cast<int32_t>(split_scratch_.size())};
  }
  JoinBlock* join = joins_.Make(
      segs.count, [done = std::move(done)](bool) mutable { done(); });
  for (const Segment& seg : segs) {
    if (log_used_ >= log_cfg_.log_region_bytes) {
      // The log is hard-full: "the pending parity updates must be applied
      // immediately, interrupting foreground processing to do so." The
      // write resumes as soon as a replay batch reclaims space.
      ++hard_stalls_;
      stalled_.push_back(StalledWrite{r.id, seg, join});
    } else {
      WriteSegment(r.id, seg, join);
    }
  }
}

void ParityLogController::WriteSegment(uint64_t request_id, const Segment& seg,
                                       JoinBlock* join) {
  (void)request_id;
  const int64_t stripe = seg.stripe;
  locks_.Acquire(stripe, LockMode::kExclusive, [this, seg, stripe, join] {
    const int32_t disk = layout_.DataDisk(stripe, seg.block_in_stripe);
    const int64_t off = stripe * layout_.stripe_unit() + seg.offset_in_block;
    const int32_t length = seg.length;
    // Read-modify-write on the data block only; the parity-update image
    // (old xor new) goes to the NVRAM log buffer instead of the parity disk.
    IssueDiskOp(disk, off, length, /*is_write=*/false,
                [this, length, stripe, disk, off, join](bool) {
                  IssueDiskOp(disk, off, length, /*is_write=*/true,
                              [this, length, stripe, join](bool) {
                                AppendImages(length);
                                locks_.Release(stripe, LockMode::kExclusive);
                                join->Dec(true);
                              });
                });
  });
}

void ParityLogController::AppendImages(int64_t bytes) {
  nvram_used_ += bytes;
  if (nvram_used_ >= log_cfg_.nvram_buffer_bytes) {
    FlushBuffer();
  }
}

void ParityLogController::FlushBuffer() {
  // One large sequential write of the buffered images into the log region
  // (this is where parity logging earns its efficiency: the per-image cost
  // is a fraction of a rotation instead of a full RMW).
  const int64_t flush_bytes = nvram_used_;
  nvram_used_ = 0;
  ++log_flushes_;
  const int64_t log_start = layout_.num_stripes() * layout_.stripe_unit();
  const int64_t region_per_disk = log_cfg_.log_region_bytes;
  const int64_t offset_in_region =
      (log_used_ / cfg_.num_disks) % std::max<int64_t>(
          region_per_disk - flush_bytes, 1);
  const int32_t disk = log_disk_cursor_;
  log_disk_cursor_ = (log_disk_cursor_ + 1) % cfg_.num_disks;
  const int32_t sector = cfg_.disk_spec.sector_bytes;
  const int64_t aligned = std::max<int64_t>(
      sector, (flush_bytes / sector) * sector);
  IssueDiskOp(disk, log_start + (offset_in_region / sector) * sector, aligned,
              /*is_write=*/true, [](bool) {});
  log_used_ += flush_bytes;
  // Background replay starts at the high-water mark, well before the log is
  // hard-full, so foreground writes rarely stall outright.
  if (!replaying_ &&
      log_used_ >= static_cast<int64_t>(
                       kHighWater * static_cast<double>(log_cfg_.log_region_bytes))) {
    StartReplay();
  }
}

void ParityLogController::StartReplay() {
  replaying_ = true;
  ++log_replays_;
  ReplayNextBatch(log_used_);
}

void ParityLogController::ReplayNextBatch(int64_t remaining_bytes) {
  (void)remaining_bytes;
  // Stop once drained to the low-water mark: the array returns to pure
  // foreground service and the log refills before the next replay.
  if (log_used_ <= static_cast<int64_t>(
                       kLowWater * static_cast<double>(log_cfg_.log_region_bytes))) {
    replaying_ = false;
    return;
  }
  const int64_t unit = layout_.stripe_unit();
  const int64_t batch_bytes = std::min<int64_t>(
      log_used_, static_cast<int64_t>(log_cfg_.replay_batch_stripes) * unit);
  const int64_t log_start = layout_.num_stripes() * unit;
  const int32_t sector = cfg_.disk_spec.sector_bytes;

  // One big sequential log read, then parity read+write pairs for each
  // affected stripe unit, spread over the disks round-robin. Foreground
  // requests share the disks FCFS -- this is the Section 2 "interference".
  const auto parity_units = static_cast<int32_t>((batch_bytes + unit - 1) / unit);
  auto after_log = [this, parity_units, unit, batch_bytes](bool) {
    JoinBlock* join = joins_.Make(parity_units, [this, batch_bytes](bool) {
      // The batch's log space is reclaimed: resume any hard-stalled writes.
      log_used_ = std::max<int64_t>(0, log_used_ - batch_bytes);
      runnable_scratch_.swap(stalled_);
      for (const StalledWrite& w : runnable_scratch_) {
        WriteSegment(w.request_id, w.seg, w.join);
      }
      runnable_scratch_.clear();
      ReplayNextBatch(log_used_);
    });
    for (int32_t i = 0; i < parity_units; ++i) {
      // Representative parity locations spread across stripes and disks.
      const int64_t stripe =
          (replay_position_ + i) % std::max<int64_t>(layout_.num_stripes(), 1);
      const int32_t pd = layout_.ParityDisk(stripe);
      IssueDiskOp(pd, stripe * unit, unit, /*is_write=*/false,
                  [this, pd, stripe, unit, join](bool) {
                    IssueDiskOp(pd, stripe * unit, unit, /*is_write=*/true,
                                [join](bool) { join->Dec(true); });
                  });
    }
    replay_position_ += parity_units;
  };
  const int64_t aligned = std::max<int64_t>(
      sector, (batch_bytes / sector) * sector);
  IssueDiskOp(log_disk_cursor_, log_start, aligned, /*is_write=*/false,
              std::move(after_log));
}

}  // namespace afraid
