// Mirrored striping (RAID 1/0): the paper's Section 2 baseline that "solves
// the small-write problem by brute force" -- every block lives on two disks,
// so a small write costs two parallel writes and no parity arithmetic at all,
// at the price of 50% space efficiency.
//
// The array pairs its disks into columns: column c is the mirror pair
// (2c, 2c+1), and client data rotates across columns through a parity-free
// StripeLayout. Reads exploit the duplicate: the dispatcher picks, per
// segment, the replica that will position fastest -- fewest queued operations
// first, then the shorter estimated positioning time from each arm's current
// cylinder (the classic shortest-positioning-time mirror read policy), with
// the lower disk id as the deterministic tie-break.
//
// Failure machinery (ArrayScheme): with a disk out, reads simply fall to the
// surviving twin and writes update it alone, so degraded service is lossless
// and there is no exposure window at all. Reconstruction is a stripe-ordered
// copy twin -> replacement behind a frontier, after which the pair is
// redundant again. Exposure statistics are identically zero.

#ifndef AFRAID_CORE_MIRROR_CONTROLLER_H_
#define AFRAID_CORE_MIRROR_CONTROLLER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "array/content.h"
#include "array/controller.h"
#include "array/layout.h"
#include "array/scheme.h"
#include "array/stripe_lock.h"
#include "core/array_config.h"
#include "disk/disk_model.h"
#include "sim/arena.h"
#include "sim/simulator.h"

namespace afraid {

class MirrorController : public ArrayScheme {
 public:
  // `config.num_disks` must be even (>= 2); the registry's Normalize rounds
  // odd widths down.
  MirrorController(Simulator* sim, const ArrayConfig& config);
  ~MirrorController() override;

  void Submit(const ClientRequest& request, RequestDone done) override;
  int64_t DataCapacityBytes() const override { return layout_.data_capacity_bytes(); }

  // --- ArrayScheme interface ---
  const char* SchemeName() const override { return "mirror"; }
  std::string PolicyLabel() const override { return "Mirror-SPTF"; }
  int32_t num_disks() const override { return cfg_.num_disks; }
  DiskModel& disk(int32_t d) override { return *disks_[d]; }
  bool FailDisk(int32_t disk) override;
  bool ReplaceDisk(int32_t disk) override;
  bool StartReconstruction(std::function<void()> done) override;
  SchemeState State() const override;
  SchemeStats Stats() const override;

  // --- Introspection ---
  const ArrayLayout& layout() const override { return layout_; }
  const ContentModel* content() const override { return content_.get(); }
  int32_t failed_disk() const { return failed_disk_; }
  int32_t recovering_disk() const { return recovering_disk_; }
  uint64_t DiskOpsIssued() const { return disk_ops_; }
  uint64_t StripesRebuilt() const { return stripes_rebuilt_; }
  // Reads won by the non-primary replica (the dispatch policy at work).
  uint64_t ReplicaReads() const { return replica_reads_; }
  // True iff both copies of every touched block agree per the content model.
  bool StripeMirrorConsistent(int64_t stripe) const;

  // Replica-choice core, exposed for the dispatch benchmark: picks the disk
  // (primary or twin) that serves `op` fastest right now.
  int32_t ChooseReplica(int64_t stripe, int32_t primary, const DiskOp& op) const;

 private:
  void DoRead(const ClientRequest& r, RequestDone done);
  void DoWrite(const ClientRequest& r, RequestDone done);
  void WriteSegment(uint64_t request_id, const Segment& seg, JoinBlock* join);
  void ReconstructNextStripe(int64_t stripe);
  bool DiskUnavailable(int32_t disk, int64_t stripe) const {
    return disk == failed_disk_ ||
           (disk == recovering_disk_ && stripe >= recovery_frontier_);
  }
  void IssueDiskOp(int32_t disk, int64_t byte_offset, int64_t length, bool is_write,
                   DiskDone done);

  Simulator* sim_;
  ArrayConfig cfg_;
  std::vector<std::unique_ptr<DiskModel>> disks_;
  StripeLayout layout_;  // Over the columns (num_disks / 2, no parity).
  StripeLockTable locks_;
  std::unique_ptr<ContentModel> content_;

  // Steady-state pooled storage (see DESIGN.md, "Arena reuse contract").
  JoinPool joins_;
  std::vector<Segment> split_scratch_;  // Consumed synchronously per request.

  // Failure machinery (same state machine as the other schemes).
  int32_t failed_disk_ = -1;
  int32_t recovering_disk_ = -1;
  int64_t recovery_frontier_ = 0;
  bool reconstruction_active_ = false;
  std::function<void()> reconstruction_done_;

  uint64_t disk_ops_ = 0;
  uint64_t replica_reads_ = 0;
  uint64_t stripes_rebuilt_ = 0;
};

}  // namespace afraid

#endif  // AFRAID_CORE_MIRROR_CONTROLLER_H_
