// Parity logging [Stodolsky93]: the closest prior solution to the small-
// update problem, and the main comparison point of the paper's Section 2.
//
// A parity-logging array keeps full redundancy at all times. A small write
// performs the usual read-modify-write on the *data* block, but instead of
// read-modify-writing the parity block it appends the xor of old and new
// data (the "parity update image") to a log: first into an NVRAM buffer,
// then -- when the buffer fills -- as one large sequential write to a log
// region on disk. When the on-disk log region fills, the array must *replay*
// it: read the log and the affected parity en masse, apply the xors, and
// rewrite the parity, reclaiming the log.
//
// Section 2's qualitative comparison, which this model reproduces:
//   * "AFRAID avoids a pre-read of the old data in the critical path for
//     writes, and thus saves a complete disk revolution on most small
//     writes" -- parity logging still pays read-old + write-new on the data
//     disk (2 I/Os, rotationally coupled); AFRAID pays 1.
//   * "the parity logging scheme applies a batch of parity updates at a
//     time, which can interfere with foreground I/O requests" -- replay here
//     is a burst of large sequential transfers that foreground requests
//     queue behind (it cannot be preempted mid-batch).
//   * "There is no parity log to fill up in AFRAID -- all that happens is
//     that the data becomes less well protected."
//
// The log is modelled as a dedicated region at the end of each disk,
// rotated across disks per log segment; full redundancy means the exposure
// statistics of this controller are identically zero.
//
// Failure machinery (ArrayScheme): because every parity-update image is
// durable (NVRAM first, then the on-disk log), the stripe's parity
// information is recoverable at all times -- degraded reads and the
// replacement-disk reconstruction sweep are lossless, and the content model
// tracks the post-replay parity directly. A write whose data disk is out
// exists only as its image until the sweep restores the block; log flushes
// and replay parity updates simply skip the dead disk.

#ifndef AFRAID_CORE_PARITY_LOG_CONTROLLER_H_
#define AFRAID_CORE_PARITY_LOG_CONTROLLER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "array/content.h"
#include "array/controller.h"
#include "array/layout.h"
#include "array/scheme.h"
#include "array/stripe_lock.h"
#include "core/array_config.h"
#include "disk/disk_model.h"
#include "sim/arena.h"
#include "sim/simulator.h"

namespace afraid {

struct ParityLogConfig {
  // Replay starts when the log passes kHighWater and drains to kLowWater.
  // NVRAM staging for parity-update images; flushed to disk when full.
  int64_t nvram_buffer_bytes = 256 * 1024;
  // On-disk log region per disk; a replay is forced when the total fills.
  int64_t log_region_bytes = 8 * 1024 * 1024;
  // Images applied per parity-region transfer during replay (batching).
  int32_t replay_batch_stripes = 64;

  // Shrinks the log region (and, if needed, the NVRAM buffer) so the log
  // fits a disk of `disk_capacity_bytes` with room left for data. A no-op
  // when the defaults already fit (any realistic disk); on tiny test disks
  // the region clamps to a quarter of the disk.
  ParityLogConfig FittedTo(int64_t disk_capacity_bytes) const;
};

class ParityLogController : public ArrayScheme {
 public:
  ParityLogController(Simulator* sim, const ArrayConfig& config,
                      const ParityLogConfig& log_config);
  ~ParityLogController() override;

  void Submit(const ClientRequest& request, RequestDone done) override;
  int64_t DataCapacityBytes() const override { return layout_->data_capacity_bytes(); }

  // --- ArrayScheme interface ---
  const char* SchemeName() const override { return "parity-log"; }
  std::string PolicyLabel() const override { return "ParityLog"; }
  int32_t num_disks() const override { return cfg_.num_disks; }
  DiskModel& disk(int32_t d) override { return *disks_[d]; }
  bool FailDisk(int32_t disk) override;
  bool ReplaceDisk(int32_t disk) override;
  bool StartReconstruction(std::function<void()> done) override;
  SchemeState State() const override;
  SchemeStats Stats() const override;

  // --- Introspection ---
  const ArrayLayout& layout() const override { return *layout_; }
  const ContentModel* content() const override { return content_.get(); }
  int32_t failed_disk() const { return failed_disk_; }
  int32_t recovering_disk() const { return recovering_disk_; }
  uint64_t DiskOpsIssued() const { return disk_ops_; }
  uint64_t LogFlushes() const { return log_flushes_; }
  uint64_t LogReplays() const { return log_replays_; }
  // Writes that arrived while the log was hard-full and had to wait for a
  // replay batch to reclaim space (the Section 2 interference mode).
  uint64_t HardStalls() const { return hard_stalls_; }
  int64_t PendingImagesBytes() const { return nvram_used_ + log_used_; }
  // Always zero: parity logging never relinquishes redundancy. Kept so the
  // comparison harness can treat all controllers uniformly.
  double TUnprotFraction() const { return 0.0; }
  double MeanParityLagBytes() const { return 0.0; }
  bool ReplayInProgress() const { return replaying_; }

 private:
  // A write segment parked while the log is hard-full, resumed (in arrival
  // order) when a replay batch reclaims space.
  struct StalledWrite {
    uint64_t request_id = 0;
    Segment seg;
    JoinBlock* join = nullptr;
  };

  void DoRead(const ClientRequest& r, RequestDone done);
  void DoWrite(const ClientRequest& r, RequestDone done);
  void WriteSegment(uint64_t request_id, const Segment& seg, JoinBlock* join);
  // Degraded path: the segment's block is rebuilt from the survivors and the
  // parity (lossless; the pending images make parity always recoverable).
  void DegradedReadSegment(const Segment& seg, JoinBlock* parent);
  void ReconstructNextStripe(int64_t stripe);
  bool DiskUnavailable(int32_t disk, int64_t stripe) const {
    return disk == failed_disk_ ||
           (disk == recovering_disk_ && stripe >= recovery_frontier_);
  }
  // Content bookkeeping for one committed write segment: data tags plus the
  // always-recoverable parity over the touched range.
  void UpdateContentForWrite(uint64_t request_id, const Segment& seg);
  // Appends `bytes` of parity-update images to the NVRAM buffer; may
  // trigger a buffer flush to the on-disk log, and then a full replay.
  void AppendImages(int64_t bytes);
  void FlushBuffer();
  void StartReplay();
  void ReplayNextBatch(int64_t remaining_bytes);
  void IssueDiskOp(int32_t disk, int64_t byte_offset, int64_t length, bool is_write,
                   DiskDone done);

  Simulator* sim_;
  ArrayConfig cfg_;
  ParityLogConfig log_cfg_;
  std::vector<std::unique_ptr<DiskModel>> disks_;
  std::unique_ptr<ArrayLayout> layout_;
  StripeLockTable locks_;
  std::unique_ptr<ContentModel> content_;

  // Steady-state pooled storage (see DESIGN.md, "Arena reuse contract").
  JoinPool joins_;
  std::vector<Segment> split_scratch_;  // Consumed synchronously per request.
  std::vector<StalledWrite> stalled_;   // Writes waiting for replay.
  std::vector<StalledWrite> runnable_scratch_;
  std::vector<uint64_t> parity_scratch_;  // Batched parity recompute.

  // Failure machinery (same state machine as the other schemes).
  int32_t failed_disk_ = -1;
  int32_t recovering_disk_ = -1;
  int64_t recovery_frontier_ = 0;
  bool reconstruction_active_ = false;
  uint64_t stripes_rebuilt_ = 0;  // Stripes restored by reconstruction sweeps.
  std::function<void()> reconstruction_done_;

  int64_t nvram_used_ = 0;   // Bytes of images in the NVRAM buffer.
  int64_t log_used_ = 0;     // Bytes of images in the on-disk log region.
  int32_t log_disk_cursor_ = 0;  // Round-robin disk for log segment writes.
  bool replaying_ = false;

  int64_t replay_position_ = 0;  // Stripe cursor for replayed parity units.
  static constexpr double kHighWater = 0.75;
  static constexpr double kLowWater = 0.25;

  uint64_t disk_ops_ = 0;
  uint64_t log_flushes_ = 0;
  uint64_t log_replays_ = 0;
  uint64_t hard_stalls_ = 0;
};

}  // namespace afraid

#endif  // AFRAID_CORE_PARITY_LOG_CONTROLLER_H_
