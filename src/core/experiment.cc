#include "core/experiment.h"

#include <algorithm>
#include <cassert>
#include <memory>

#include "array/host_driver.h"
#include "core/afraid_controller.h"
#include "disk/geometry.h"
#include "sim/simulator.h"

namespace afraid {
namespace {

// Feeds trace records into the host driver at their arrival times. Arrival
// events are chained (one pending event at a time) so the event queue stays
// small even for multi-million-record traces.
class TraceReplayer {
 public:
  TraceReplayer(Simulator* sim, HostDriver* driver, const Trace& trace)
      : sim_(sim), driver_(driver), trace_(trace) {}

  void Start() { ScheduleNext(); }
  bool Finished() const { return next_ >= trace_.records.size(); }

 private:
  void ScheduleNext() {
    if (Finished()) {
      return;
    }
    const TraceRecord& r = trace_.records[next_];
    sim_->At(std::max(r.time, sim_->Now()), [this, &r] {
      driver_->Submit(r.offset, r.size, r.is_write);
      ++next_;
      ScheduleNext();
    });
  }

  Simulator* sim_;
  HostDriver* driver_;
  const Trace& trace_;
  size_t next_ = 0;
};

}  // namespace

AvailabilityParams AvailabilityParamsFor(const ArrayConfig& config) {
  AvailabilityParams p;  // Table 1 failure-rate defaults.
  p.num_data_disks = config.num_disks - config.parity_blocks;
  p.stripe_unit_bytes = static_cast<double>(config.stripe_unit_bytes);
  const DiskGeometry geom(config.disk_spec.zones, config.disk_spec.heads,
                          config.disk_spec.sector_bytes);
  p.disk_bytes = static_cast<double>(geom.CapacityBytes());
  return p;
}

SimReport RunExperiment(const ArrayConfig& config, const PolicySpec& spec,
                        const Trace& trace) {
  Simulator sim;
  const AvailabilityParams avail_params = AvailabilityParamsFor(config);
  AfraidController controller(&sim, config, MakePolicy(spec), avail_params);
  HostDriver driver(&sim, &controller, config.MaxActive(), config.host_sched);
  TraceReplayer replayer(&sim, &driver, trace);
  replayer.Start();

  // Run the arrival schedule plus whatever work it leaves behind. Background
  // rebuilds triggered by trailing idleness run here too; measurement of the
  // lag statistics ends at the instant the last request completes.
  sim.RunToEnd();
  assert(driver.Drained());

  SimReport rep;
  rep.workload = trace.name;
  rep.policy = controller.policy().Name();
  rep.requests = driver.Completed();
  rep.reads = driver.ReadLatencies().Count();
  rep.writes = driver.WriteLatencies().Count();
  rep.mean_io_ms = driver.AllLatencies().Mean();
  rep.mean_read_ms = driver.ReadLatencies().Mean();
  rep.mean_write_ms = driver.WriteLatencies().Mean();
  rep.median_io_ms = driver.AllLatencies().Median();
  rep.p95_io_ms = driver.AllLatencies().Percentile(0.95);
  rep.max_io_ms = driver.AllLatencies().Max();

  const SimTime now = sim.Now();
  rep.duration_s = ToSeconds(now);
  rep.idle_fraction = controller.IdleFraction();
  rep.mean_queue_depth = driver.Occupancy().MeanTo(now);

  rep.mean_parity_lag_bytes = controller.MeanParityLagBytes();
  rep.t_unprot_fraction = controller.TUnprotFraction();
  rep.max_dirty_stripes = controller.MaxDirtyStripes();

  rep.stripes_rebuilt = controller.StripesRebuilt();
  rep.rebuild_passes = controller.RebuildPasses();
  rep.afraid_mode_writes = controller.AfraidModeStripeWrites();
  rep.raid5_mode_writes = controller.Raid5ModeStripeWrites();
  rep.disk_ops_total = controller.TotalDiskOps();
  rep.disk_ops_rebuild = controller.DiskOps(DiskOpPurpose::kRebuildRead) +
                         controller.DiskOps(DiskOpPurpose::kRebuildWrite);
  rep.disk_ops_parity = controller.DiskOps(DiskOpPurpose::kParityWrite) +
                        controller.DiskOps(DiskOpPurpose::kOldDataRead) +
                        controller.DiskOps(DiskOpPurpose::kOldParityRead);
  rep.cache_hits = controller.CacheHits();
  double util = 0.0;
  for (int32_t d = 0; d < config.num_disks; ++d) {
    util += controller.disk(d).UtilizationTo(now);
  }
  rep.disk_utilization = util / config.num_disks;

  // Attach the availability model (Section 3) evaluated on the measured
  // parity-lag statistics.
  rep.avail = MakeAvailabilityReport(avail_params, SchemeFor(spec),
                                     rep.t_unprot_fraction,
                                     rep.mean_parity_lag_bytes);
  return rep;
}

SimReport RunWorkload(const ArrayConfig& config, const PolicySpec& spec,
                      const WorkloadParams& workload, uint64_t max_requests,
                      SimDuration max_duration) {
  WorkloadParams params = workload;
  // Size the workload to the array's client-visible capacity.
  const DiskGeometry geom(config.disk_spec.zones, config.disk_spec.heads,
                          config.disk_spec.sector_bytes);
  const StripeLayout layout(config.num_disks, config.stripe_unit_bytes,
                            geom.CapacityBytes(), config.parity_blocks);
  params.address_space_bytes = layout.data_capacity_bytes();
  const Trace trace = GenerateWorkload(params, max_requests, max_duration);
  return RunExperiment(config, spec, trace);
}

}  // namespace afraid
