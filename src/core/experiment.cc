#include "core/experiment.h"

#include <algorithm>
#include <cassert>
#include <memory>

#include "array/host_driver.h"
#include "array/plan.h"
#include "array/plan_stream.h"
#include "array/scheme.h"
#include "core/scheme_registry.h"
#include "disk/disk_model.h"
#include "disk/geometry.h"
#include "obs/artifacts.h"
#include "obs/metrics.h"
#include "obs/probe.h"
#include "obs/tracer.h"
#include "sim/simulator.h"

namespace afraid {
namespace {

// Feeds precompiled plan records into the host driver at their arrival
// times. Arrival events are chained (one pending event at a time) so the
// event queue stays small even for multi-million-record traces. The plan's
// arrival schedule and segments match the trace exactly (array/plan.h), so a
// planned replay walks the bit-identical event trajectory a record-by-record
// replay would.
class PlanReplayer {
 public:
  PlanReplayer(Simulator* sim, HostDriver* driver, const RequestPlan& plan)
      : sim_(sim), driver_(driver), plan_(plan) {}

  void Start() { ScheduleNext(); }
  bool Finished() const { return next_ >= plan_.size(); }

 private:
  void ScheduleNext() {
    if (Finished()) {
      return;
    }
    const PlanRecord& r = plan_.record(next_);
    sim_->At(std::max(r.time, sim_->Now()), [this, &r] {
      const Span<Segment> segs = plan_.segments(next_);
      driver_->SubmitPlanned(r.offset, r.size, r.is_write, segs.data, segs.count);
      ++next_;
      ScheduleNext();
    });
  }

  Simulator* sim_;
  HostDriver* driver_;
  const RequestPlan& plan_;
  size_t next_ = 0;
};

// Registers the standard metric set against the live components. Samplers
// only *read* component state, so a snapshot cannot alter the simulation.
void RegisterMetrics(MetricsRegistry* metrics, const ArrayConfig& config,
                     ArrayScheme* controller, HostDriver* driver) {
  const MetricId parity_lag = metrics->AddGauge("parity_lag_bytes");
  const MetricId dirty_bands = metrics->AddGauge("dirty_bands");
  const MetricId occupancy = metrics->AddGauge("driver_occupancy");
  const MetricId mode_raid5 = metrics->AddGauge("mode_raid5");
  const MetricId requests = metrics->AddCounter("requests_completed");
  const MetricId disk_ops = metrics->AddCounter("disk_ops_total");
  const MetricId rebuilt = metrics->AddCounter("stripes_rebuilt");
  const MetricId losses = metrics->AddCounter("loss_events");
  std::vector<MetricId> disk_util;
  std::vector<MetricId> disk_queue;
  for (int32_t d = 0; d < config.num_disks; ++d) {
    disk_util.push_back(metrics->AddGauge("disk" + std::to_string(d) + "_util"));
    disk_queue.push_back(
        metrics->AddGauge("disk" + std::to_string(d) + "_queue_depth"));
  }
  metrics->AddSampler([=, num_disks = config.num_disks](SimTime now) {
    const SchemeState state = controller->State();
    const SchemeStats stats = controller->Stats();
    metrics->Set(parity_lag, state.parity_lag_bytes);
    metrics->Set(dirty_bands, static_cast<double>(state.dirty_marks));
    metrics->Set(occupancy, driver->Occupancy().Current());
    metrics->Set(mode_raid5, state.last_write_raid5 ? 1.0 : 0.0);
    metrics->Set(requests, static_cast<double>(driver->Completed()));
    metrics->Set(disk_ops, static_cast<double>(stats.disk_ops_total));
    metrics->Set(rebuilt, static_cast<double>(stats.stripes_rebuilt));
    metrics->Set(losses, static_cast<double>(state.loss_events));
    for (int32_t d = 0; d < num_disks; ++d) {
      metrics->Set(disk_util[static_cast<size_t>(d)],
                   controller->disk(d).UtilizationTo(now));
      metrics->Set(disk_queue[static_cast<size_t>(d)],
                   static_cast<double>(controller->disk(d).QueueDepth()));
    }
  });
}

}  // namespace

AvailabilityParams AvailabilityParamsFor(const ArrayConfig& config) {
  AvailabilityParams p;  // Table 1 failure-rate defaults.
  p.num_data_disks = config.num_disks - config.parity_blocks;
  p.stripe_unit_bytes = static_cast<double>(config.stripe_unit_bytes);
  const DiskGeometry geom(config.disk_spec.zones, config.disk_spec.heads,
                          config.disk_spec.sector_bytes);
  p.disk_bytes = static_cast<double>(geom.CapacityBytes());
  return p;
}

SimReport Experiment::Run() {
  cfg_ = SchemeRegistry::Normalize(scheme_, cfg_);
  afraid::Trace generated;
  if (have_workload_) {
    WorkloadParams params = workload_;
    // Size the workload to the array's client-visible capacity.
    params.address_space_bytes = SchemeRegistry::DataCapacityBytes(scheme_, cfg_);
    generated = GenerateWorkload(params, max_requests_, max_duration_);
    trace_ = &generated;
  }
  const bool streaming = !trace_file_.empty();
  assert((trace_ != nullptr || streaming) &&
         "Experiment needs Trace(), TraceFile() or Workload()");

  Simulator sim;
  const AvailabilityParams avail_params = AvailabilityParamsFor(cfg_);

  std::unique_ptr<Tracer> tracer;
  if (observe_ && obs_.trace) {
    tracer = std::make_unique<Tracer>();
  }
  SchemeContext ctx;
  ctx.sim = &sim;
  ctx.config = cfg_;
  ctx.policy = spec_;
  ctx.avail = avail_params;
  ctx.probe = Probe(tracer.get());
  std::unique_ptr<ArrayScheme> controller = SchemeRegistry::Create(scheme_, ctx);
  assert(controller != nullptr && "Experiment: unknown scheme name");
  HostDriver driver(&sim, controller.get(), cfg_.MaxActive(), cfg_.host_sched,
                    Probe(tracer.get()));
  // Compile the replay plan against the exact layout the controller derived
  // from cfg_: every record's mapping is resolved here, once, so the
  // simulation loop never divides by the stripe geometry. The plan outlives
  // the run, so controllers hold spans into it across continuations.
  const ArrayLayout& plan_layout = controller->layout();

  std::unique_ptr<MetricsRegistry> metrics;
  if (observe_ && obs_.metrics) {
    metrics = std::make_unique<MetricsRegistry>();
    RegisterMetrics(metrics.get(), cfg_, controller.get(), &driver);
  }

  std::string workload_name;
  trace_status_ = TraceStatus::Ok();
  stream_stats_ = StreamStats{};

  if (streaming) {
    // Streaming path: pull chunks through the bounded plan ring, feeding the
    // replayer and stepping the simulator until it starves for the next
    // chunk. Feeding happens before the next Step, so arrivals enter the
    // event queue at the same point in the event sequence as the monolithic
    // replayer's chained arrivals -- the trajectory is byte-identical.
    TraceChunkReader reader(trace_file_, stream_opts_);
    StreamingPlanCompiler compiler(&reader, plan_layout);
    StreamingPlanReplayer replayer(&sim, &driver, compiler.ring());
    driver.SetCompletionListener(
        [&replayer](uint64_t id, double, bool) { replayer.OnComplete(id); });

    const SimDuration interval =
        obs_.metrics_interval > 0 ? obs_.metrics_interval : Milliseconds(100);
    SimTime next_snap = 0;
    if (metrics != nullptr) {
      metrics->Snapshot(sim.Now());
      next_snap = sim.Now() + interval;
    }
    // Snapshot-between-events stepping, identical to the monolithic loop
    // below; `more` lets the feed loop break out at starvation.
    const auto pump = [&](const auto& more) {
      while (!sim.Idle() && more()) {
        if (metrics != nullptr) {
          const SimTime horizon = sim.NextEventTime();
          while (next_snap < horizon) {
            metrics->Snapshot(next_snap);
            next_snap += interval;
          }
        }
        sim.Step();
      }
    };
    while (const RequestPlan* p = compiler.Next()) {
      driver.ReserveLatencySamples(reader.records_read());
      replayer.Feed(p);
      pump([&replayer] { return !replayer.starved(); });
    }
    replayer.FinishFeeding();
    pump([] { return true; });
    if (metrics != nullptr) {
      metrics->Snapshot(sim.Now());
    }
    driver.SetCompletionListener(nullptr);

    trace_status_ = reader.status();
    workload_name = reader.name();
    stream_stats_.chunks = reader.chunks_read();
    stream_stats_.records = reader.records_read();
    stream_stats_.peak_plan_bytes = compiler.ring()->peak_bytes();
    stream_stats_.peak_buffer_bytes = reader.peak_buffer_bytes();
    stream_stats_.ring_slots = compiler.ring()->slots();
  } else {
    const afraid::Trace& trace = *trace_;
    workload_name = trace.name;
    const RequestPlan plan(trace, plan_layout);
    driver.ReserveLatencySamples(plan.size());
    PlanReplayer replayer(&sim, &driver, plan);
    replayer.Start();

    // Run the arrival schedule plus whatever work it leaves behind.
    // Background rebuilds triggered by trailing idleness run here too;
    // measurement of the lag statistics ends at the instant the last request
    // completes.
    if (metrics == nullptr) {
      sim.RunToEnd();
    } else {
      // Same event trajectory, but with snapshots interleaved *between*
      // events: before each event we record every whole sampling interval
      // that elapses strictly before it. The clock never advances for a
      // snapshot, so the run (and its SimReport) stays bit-identical to the
      // unobserved one.
      const SimDuration interval =
          obs_.metrics_interval > 0 ? obs_.metrics_interval : Milliseconds(100);
      metrics->Snapshot(sim.Now());
      SimTime next_snap = sim.Now() + interval;
      while (!sim.Idle()) {
        const SimTime horizon = sim.NextEventTime();
        while (next_snap < horizon) {
          metrics->Snapshot(next_snap);
          next_snap += interval;
        }
        sim.Step();
      }
      metrics->Snapshot(sim.Now());
    }
  }
  assert(driver.Drained());

  SimReport rep;
  rep.workload = workload_name;
  rep.policy = controller->PolicyLabel();
  rep.requests = driver.Completed();
  rep.reads = driver.ReadLatencies().Count();
  rep.writes = driver.WriteLatencies().Count();
  rep.mean_io_ms = driver.AllLatencies().Mean();
  rep.mean_read_ms = driver.ReadLatencies().Mean();
  rep.mean_write_ms = driver.WriteLatencies().Mean();
  rep.median_io_ms = driver.AllLatencies().Median();
  rep.p95_io_ms = driver.AllLatencies().Percentile(0.95);
  rep.max_io_ms = driver.AllLatencies().Max();

  const SimTime now = sim.Now();
  rep.duration_s = ToSeconds(now);
  rep.mean_queue_depth = driver.Occupancy().MeanTo(now);

  const SchemeStats stats = controller->Stats();
  rep.idle_fraction = stats.idle_fraction;
  rep.mean_parity_lag_bytes = stats.mean_parity_lag_bytes;
  rep.t_unprot_fraction = stats.t_unprot_fraction;
  rep.max_dirty_stripes = stats.max_dirty_stripes;

  rep.stripes_rebuilt = stats.stripes_rebuilt;
  rep.rebuild_passes = stats.rebuild_passes;
  rep.afraid_mode_writes = stats.afraid_mode_writes;
  rep.raid5_mode_writes = stats.raid5_mode_writes;
  rep.disk_ops_total = stats.disk_ops_total;
  rep.disk_ops_rebuild = stats.disk_ops_rebuild;
  rep.disk_ops_parity = stats.disk_ops_parity;
  rep.cache_hits = stats.cache_hits;
  double util = 0.0;
  for (int32_t d = 0; d < cfg_.num_disks; ++d) {
    util += controller->disk(d).UtilizationTo(now);
  }
  rep.disk_utilization = util / cfg_.num_disks;

  // Attach the availability model (Section 3) evaluated on the measured
  // parity-lag statistics.
  rep.avail = MakeAvailabilityReport(avail_params,
                                     SchemeRegistry::AvailSchemeFor(scheme_, spec_),
                                     rep.t_unprot_fraction,
                                     rep.mean_parity_lag_bytes);

  if (metrics != nullptr) {
    // The client I/O latency distribution, from the driver's sample sets
    // (filled after the run; the histogram is a serialization view).
    Histogram* h = metrics->AddHistogram("io_latency_ms", 0.0, 2.0, 50);
    for (double ms : driver.AllLatencies().Samples()) {
      h->Add(ms);
    }
  }
  if (observe_ && !obs_.artifacts_dir.empty()) {
    RunArtifacts artifacts(obs_.artifacts_dir);
    if (artifacts.ok()) {
      artifacts.WriteReport(rep);
      if (metrics != nullptr) {
        artifacts.WriteMetrics(*metrics);
      }
      if (tracer != nullptr) {
        artifacts.WriteTrace(*tracer);
      }
    }
  }
  return rep;
}

}  // namespace afraid
