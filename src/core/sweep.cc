#include "core/sweep.h"

#include <atomic>
#include <cstdlib>
#include <thread>

namespace afraid {

int32_t SweepThreads() {
  if (const char* env = std::getenv("AFRAID_BENCH_THREADS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v >= 1) {
      return static_cast<int32_t>(v);
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int32_t>(hw) : 1;
}

namespace internal {

void RunSweep(int64_t cells, int32_t threads,
              const std::function<void(int64_t)>& run_cell) {
  if (cells <= 0) {
    return;
  }
  int32_t n = threads > 0 ? threads : SweepThreads();
  if (n > cells) {
    n = static_cast<int32_t>(cells);
  }
  if (n <= 1) {
    for (int64_t i = 0; i < cells; ++i) {
      run_cell(i);
    }
    return;
  }
  std::atomic<int64_t> next{0};
  auto worker = [&] {
    for (;;) {
      const int64_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= cells) {
        return;
      }
      run_cell(i);
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(static_cast<size_t>(n));
  for (int32_t t = 0; t < n; ++t) {
    pool.emplace_back(worker);
  }
  for (std::thread& t : pool) {
    t.join();
  }
}

}  // namespace internal
}  // namespace afraid
