#include "core/mirror_controller.h"

#include <cassert>
#include <utility>

#include "disk/geometry.h"

namespace afraid {

MirrorController::MirrorController(Simulator* sim, const ArrayConfig& config)
    : sim_(sim),
      cfg_(config),
      layout_(config.num_disks / 2, config.stripe_unit_bytes,
              DiskGeometry(config.disk_spec.zones, config.disk_spec.heads,
                           config.disk_spec.sector_bytes)
                  .CapacityBytes(),
              /*parity_blocks=*/0) {
  assert(cfg_.num_disks >= 2 && cfg_.num_disks % 2 == 0);
  for (int32_t d = 0; d < cfg_.num_disks; ++d) {
    disks_.push_back(std::make_unique<DiskModel>(sim_, cfg_.disk_spec, d));
  }
  if (cfg_.track_content) {
    // One "data" slot per column for the primary copy and one "parity" slot
    // per column for the twin, so copy divergence is observable.
    content_ = std::make_unique<ContentModel>(
        layout_.data_blocks_per_stripe(), layout_.data_blocks_per_stripe(),
        static_cast<int32_t>(cfg_.stripe_unit_bytes / cfg_.disk_spec.sector_bytes));
  }
}

MirrorController::~MirrorController() = default;

void MirrorController::IssueDiskOp(int32_t disk, int64_t byte_offset,
                                   int64_t length, bool is_write, DiskDone done) {
  const int32_t sector = cfg_.disk_spec.sector_bytes;
  assert(byte_offset % sector == 0 && length > 0 && length % sector == 0);
  ++disk_ops_;
  DiskOp op;
  op.lba = byte_offset / sector;
  op.sectors = static_cast<int32_t>(length / sector);
  op.is_write = is_write;
  disks_[static_cast<size_t>(disk)]->Submit(
      op, [done = std::move(done)](const DiskOpResult& r) mutable { done(r.ok); });
}

int32_t MirrorController::ChooseReplica(int64_t stripe, int32_t primary,
                                        const DiskOp& op) const {
  const int32_t twin = primary + 1;
  const bool primary_ok = !DiskUnavailable(primary, stripe);
  const bool twin_ok = !DiskUnavailable(twin, stripe);
  if (!twin_ok) {
    return primary;
  }
  if (!primary_ok) {
    return twin;
  }
  const DiskModel& a = *disks_[static_cast<size_t>(primary)];
  const DiskModel& b = *disks_[static_cast<size_t>(twin)];
  // Fewest queued operations first (the strongest signal under load), then
  // the shorter positioning estimate from each arm's current cylinder, with
  // the lower disk id as the deterministic tie-break.
  if (a.QueueDepth() != b.QueueDepth()) {
    return a.QueueDepth() < b.QueueDepth() ? primary : twin;
  }
  int32_t end_cylinder = 0;
  const SimTime now = sim_->Now();
  const SimDuration ta =
      a.ComputeService(now, op, a.CurrentCylinder(), &end_cylinder).Total();
  const SimDuration tb =
      b.ComputeService(now, op, b.CurrentCylinder(), &end_cylinder).Total();
  return tb < ta ? twin : primary;
}

void MirrorController::Submit(const ClientRequest& request, RequestDone done) {
  assert(request.size > 0);
  assert(request.offset >= 0 &&
         request.offset + request.size <= layout_.data_capacity_bytes());
  if (request.is_write) {
    DoWrite(request, std::move(done));
  } else {
    DoRead(request, std::move(done));
  }
}

void MirrorController::DoRead(const ClientRequest& r, RequestDone done) {
  // Planned requests carry their precompiled Split() (see array/plan.h).
  Span<Segment> segs{r.plan_segs, r.plan_seg_count};
  if (r.plan_segs == nullptr) {
    layout_.SplitInto(r.offset, r.size, &split_scratch_);
    segs = Span<Segment>{split_scratch_.data(),
                         static_cast<int32_t>(split_scratch_.size())};
  }
  JoinBlock* join = joins_.Make(
      segs.count, [done = std::move(done)](bool) mutable { done(); });
  const int32_t sector = cfg_.disk_spec.sector_bytes;
  for (const Segment& seg : segs) {
    const int32_t col = layout_.DataDisk(seg.stripe, seg.block_in_stripe);
    const int32_t primary = 2 * col;
    const int64_t off = seg.stripe * layout_.stripe_unit() + seg.offset_in_block;
    DiskOp op;
    op.lba = off / sector;
    op.sectors = seg.length / sector;
    op.is_write = false;
    const int32_t pick = ChooseReplica(seg.stripe, primary, op);
    if (pick != primary) {
      ++replica_reads_;
    }
    IssueDiskOp(pick, off, seg.length, /*is_write=*/false,
                [join](bool) { join->Dec(true); });
  }
}

void MirrorController::DoWrite(const ClientRequest& r, RequestDone done) {
  Span<Segment> segs{r.plan_segs, r.plan_seg_count};
  if (r.plan_segs == nullptr) {
    layout_.SplitInto(r.offset, r.size, &split_scratch_);
    segs = Span<Segment>{split_scratch_.data(),
                         static_cast<int32_t>(split_scratch_.size())};
  }
  JoinBlock* join = joins_.Make(
      segs.count, [done = std::move(done)](bool) mutable { done(); });
  for (const Segment& seg : segs) {
    WriteSegment(r.id, seg, join);
  }
}

void MirrorController::WriteSegment(uint64_t request_id, const Segment& seg,
                                    JoinBlock* join) {
  // The stripe lock serialises copy updates against the reconstruction
  // sweep's twin -> replacement copy, so the two halves cannot be observed
  // (or frozen) mid-divergence.
  locks_.Acquire(seg.stripe, LockMode::kExclusive, [this, request_id, seg, join] {
    const int32_t col = layout_.DataDisk(seg.stripe, seg.block_in_stripe);
    const int32_t primary = 2 * col;
    const int64_t off = seg.stripe * layout_.stripe_unit() + seg.offset_in_block;
    JoinBlock* pair = joins_.Make(2, [this, seg, join](bool) {
      locks_.Release(seg.stripe, LockMode::kExclusive);
      join->Dec(true);
    });
    for (int32_t side = 0; side < 2; ++side) {
      const int32_t d = primary + side;
      if (DiskUnavailable(d, seg.stripe)) {
        // The surviving twin carries the write; the sweep recopies later.
        sim_->After(0, [pair] { pair->Dec(true); });
        continue;
      }
      IssueDiskOp(d, off, seg.length, /*is_write=*/true,
                  [this, request_id, seg, side, pair](bool ok) {
                    if (ok && content_ != nullptr) {
                      const int32_t sector = cfg_.disk_spec.sector_bytes;
                      const int32_t first = seg.offset_in_block / sector;
                      const int32_t count = seg.length / sector;
                      const int64_t logical_first = seg.logical_offset / sector;
                      for (int32_t i = 0; i < count; ++i) {
                        const uint64_t v =
                            ContentModel::MixTag(request_id, logical_first + i);
                        if (side == 0) {
                          content_->SetData(seg.stripe, seg.block_in_stripe,
                                            first + i, v);
                        } else {
                          content_->SetParity(seg.stripe, first + i, v,
                                              seg.block_in_stripe);
                        }
                      }
                    }
                    pair->Dec(true);
                  });
    }
  });
}

bool MirrorController::StripeMirrorConsistent(int64_t stripe) const {
  assert(content_ != nullptr);
  for (int32_t j = 0; j < layout_.data_blocks_per_stripe(); ++j) {
    for (int32_t s = 0; s < content_->sectors_per_unit(); ++s) {
      if (content_->GetData(stripe, j, s) != content_->GetParity(stripe, s, j)) {
        return false;
      }
    }
  }
  return true;
}

// --- Failure machinery ------------------------------------------------------------

bool MirrorController::FailDisk(int32_t disk) {
  if (disk < 0 || disk >= cfg_.num_disks || failed_disk_ >= 0 ||
      recovering_disk_ >= 0) {
    return false;
  }
  failed_disk_ = disk;
  disks_[static_cast<size_t>(disk)]->Fail();
  return true;
}

bool MirrorController::ReplaceDisk(int32_t disk) {
  if (disk != failed_disk_ || disk < 0) {
    return false;
  }
  disks_[static_cast<size_t>(disk)]->Replace();
  failed_disk_ = -1;
  recovering_disk_ = disk;
  recovery_frontier_ = 0;
  // The replacement mechanism is blank; model its copy as zeroes.
  if (content_ != nullptr) {
    const int32_t col = disk / 2;
    const int32_t side = disk % 2;
    for (int64_t s : content_->TouchedStripes()) {
      for (int32_t j = 0; j < layout_.data_blocks_per_stripe(); ++j) {
        if (layout_.DataDisk(s, j) != col) {
          continue;
        }
        for (int32_t i = 0; i < content_->sectors_per_unit(); ++i) {
          if (side == 0) {
            content_->SetData(s, j, i, 0);
          } else {
            content_->SetParity(s, i, 0, j);
          }
        }
      }
    }
  }
  return true;
}

bool MirrorController::StartReconstruction(std::function<void()> done) {
  if (recovering_disk_ < 0 || reconstruction_active_) {
    return false;
  }
  reconstruction_active_ = true;
  reconstruction_done_ = std::move(done);
  ReconstructNextStripe(0);
  return true;
}

void MirrorController::ReconstructNextStripe(int64_t stripe) {
  if (stripe >= layout_.num_stripes()) {
    reconstruction_active_ = false;
    recovering_disk_ = -1;
    recovery_frontier_ = 0;
    auto done = std::move(reconstruction_done_);
    reconstruction_done_ = nullptr;
    if (done) {
      done();
    }
    return;
  }
  locks_.Acquire(stripe, LockMode::kExclusive, [this, stripe] {
    const int32_t target = recovering_disk_;
    const int32_t col = target / 2;
    const int32_t side = target % 2;
    const int32_t twin = side == 0 ? target + 1 : target - 1;
    const int64_t unit = layout_.stripe_unit();
    // The column's block in this stripe (each column holds exactly one).
    int32_t jb = -1;
    for (int32_t j = 0; j < layout_.data_blocks_per_stripe(); ++j) {
      if (layout_.DataDisk(stripe, j) == col) {
        jb = j;
        break;
      }
    }
    assert(jb >= 0);
    // Logical copy first, under the lock: twin -> replacement, exact.
    if (content_ != nullptr) {
      for (int32_t s = 0; s < content_->sectors_per_unit(); ++s) {
        if (side == 0) {
          content_->SetData(stripe, jb, s, content_->GetParity(stripe, s, jb));
        } else {
          content_->SetParity(stripe, s, content_->GetData(stripe, jb, s), jb);
        }
      }
    }
    auto advance = [this, stripe](bool) {
      ++stripes_rebuilt_;
      recovery_frontier_ = stripe + 1;
      locks_.Release(stripe, LockMode::kExclusive);
      ReconstructNextStripe(stripe + 1);
    };
    IssueDiskOp(twin, stripe * unit, unit, /*is_write=*/false,
                [this, stripe, target, unit, advance](bool) {
                  IssueDiskOp(target, stripe * unit, unit, /*is_write=*/true,
                              [advance](bool) mutable { advance(true); });
                });
  });
}

SchemeState MirrorController::State() const {
  SchemeState st;
  st.failed_disk = failed_disk_;
  st.recovering_disk = recovering_disk_;
  st.reconstruction_active = reconstruction_active_;
  st.parity_lag_bytes = 0.0;  // The twin is updated in the write itself.
  return st;
}

SchemeStats MirrorController::Stats() const {
  SchemeStats s;
  s.stripes_rebuilt = stripes_rebuilt_;
  s.disk_ops_total = disk_ops_;
  return s;
}

}  // namespace afraid
