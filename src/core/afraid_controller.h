// The AFRAID array controller.
//
// One controller class implements the whole family the paper compares --
// exactly as the paper did it: "almost all of the code was the same between
// the various array models ... we modelled RAID 0 as an AFRAID that simply
// never did parity updates." The injected ParityPolicy decides, per write,
// whether parity is updated synchronously (RAID 5 mode) or deferred (AFRAID
// mode), and when background rebuilds run.
//
// Write paths:
//   AFRAID mode:  take the stripe shared, write the data, mark the stripe
//                 unredundant in NVRAM. One disk I/O in the critical path.
//   RAID 5 mode:  take the stripe exclusively, then either
//                   - full-stripe write (covers all N data blocks),
//                   - reconstruct-write (read untouched blocks, recompute
//                     parity from scratch) when most of the stripe changes
//                     or when the stripe's parity is already stale, or
//                   - read-modify-write (pre-read old data + old parity,
//                     xor-delta, write data + parity) for small updates --
//                 the classic 4-I/O small-update penalty of Section 1.
//
// Background parity rebuilds sweep the NVRAM dirty set in ascending stripe
// order (adjacent dirty stripes coalesce into near-sequential disk access),
// one stripe at a time, preemptable between stripes.
//
// Failure machinery: single-disk failure with degraded reads/writes,
// replacement-disk reconstruction, NVRAM marking-memory loss with the
// conservative whole-array parity scrub, and host-requested paritypoints
// (Section 5).

#ifndef AFRAID_CORE_AFRAID_CONTROLLER_H_
#define AFRAID_CORE_AFRAID_CONTROLLER_H_

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "array/cache.h"
#include "array/content.h"
#include "array/controller.h"
#include "array/scheme.h"
#include "array/idle_detector.h"
#include "array/idle_predictor.h"
#include "array/layout.h"
#include "array/nvram.h"
#include "array/request.h"
#include "array/stripe_lock.h"
#include "avail/model.h"
#include "core/array_config.h"
#include "core/policy.h"
#include "disk/disk_model.h"
#include "obs/probe.h"
#include "sim/arena.h"
#include "sim/simulator.h"
#include "stats/time_weighted.h"

namespace afraid {

// What each disk I/O was for (statistics; also drives Figure 1's I/O counts).
enum class DiskOpPurpose : int32_t {
  kClientRead = 0,
  kClientWrite,
  kOldDataRead,      // RAID 5 RMW pre-read.
  kOldParityRead,    // RAID 5 RMW pre-read.
  kParityWrite,      // Synchronous (RAID 5-mode) parity write.
  kReconstructRead,  // Reconstruct-write / degraded-mode companion reads.
  kRebuildRead,      // Background AFRAID parity rebuild.
  kRebuildWrite,
  kRecoveryRead,     // Failed-disk reconstruction sweep.
  kRecoveryWrite,
  kNumPurposes,
};

// Human-readable purpose label (trace span names, reports).
const char* DiskOpPurposeName(DiskOpPurpose purpose);

// LossCause / LossEvent / LossListener live in array/scheme.h: every scheme's
// failure machinery reports losses through the same types.

class AfraidController : public ArrayScheme {
 public:
  // A non-null `probe` turns tracing on: the controller opens one track per
  // disk (purpose-labelled service spans + queue-depth counters), a
  // "controller" track (mode flips, injected faults, data-loss incidents)
  // and a "rebuild" track (rebuild passes, band steps, recovery sweeps).
  AfraidController(Simulator* sim, const ArrayConfig& config,
                   std::unique_ptr<ParityPolicy> policy,
                   const AvailabilityParams& avail_params, Probe probe = {});
  ~AfraidController() override;

  // --- ArrayController interface ---------------------------------------------
  void Submit(const ClientRequest& request, RequestDone done) override;
  int64_t DataCapacityBytes() const override { return layout_->data_capacity_bytes(); }

  // --- ArrayScheme interface ---------------------------------------------------
  const char* SchemeName() const override { return "afraid"; }
  std::string PolicyLabel() const override;
  int32_t num_disks() const override { return cfg_.num_disks; }
  SchemeState State() const override;
  SchemeStats Stats() const override;

  // --- Failure injection & recovery ------------------------------------------
  // Fails one disk (at most one failure is tolerated at a time).
  bool FailDisk(int32_t disk) override;
  // Installs a replacement mechanism for the failed disk (blank contents).
  bool ReplaceDisk(int32_t disk) override;
  // Rebuilds the replaced disk's contents stripe by stripe; `done` fires when
  // the array is fully redundant again. Runs concurrently with client I/O.
  bool StartReconstruction(std::function<void()> done) override;
  // Loses the NVRAM marking memory (all dirty knowledge gone).
  bool FailNvram() override;
  // The conservative recovery from NVRAM loss: recompute parity everywhere.
  bool StartFullScrub(std::function<void()> done) override;

  // --- Section 5 refinements ---------------------------------------------------
  // Host-requested "paritypoint": force the given byte range redundant;
  // `done` fires once every stripe overlapping the range has fresh parity.
  // Stripes in a kNeverParity region are excluded.
  void ParityPoint(int64_t offset, int64_t length, std::function<void()> done);
  // Forces every dirty stripe redundant (used by tests to quiesce).
  void RebuildAll(std::function<void()> done);

  // Per-region redundancy classes: "stripe-aligned subsets of an AFRAID's
  // storage space could be permanently flagged with different redundancy
  // properties, from full RAID 5 redundancy-preservation to zero-redundancy
  // RAID 0-style storage" (Section 5). Regions override the policy for the
  // stripes they cover; unflagged stripes follow the installed policy.
  enum class RedundancyClass {
    kPolicyDefault,  // Follow the installed ParityPolicy.
    kAlwaysRaid5,    // Synchronous parity, always.
    kAlwaysAfraid,   // Deferred parity, regardless of policy reversion.
    kNeverParity,    // RAID 0-style: parity never maintained.
  };
  // Flags the stripes overlapping [offset, offset+length). Later calls
  // override earlier ones where they overlap.
  void SetRegionClass(int64_t offset, int64_t length, RedundancyClass cls);
  RedundancyClass RegionClassOf(int64_t stripe) const;

  // --- Introspection -----------------------------------------------------------
  const ArrayLayout& layout() const override { return *layout_; }
  const NvramBitmap& nvram() const { return nvram_; }
  const ContentModel* content() const override { return content_.get(); }
  DiskModel& disk(int32_t d) override { return *disks_[d]; }
  int32_t failed_disk() const { return failed_disk_; }
  int32_t recovering_disk() const { return recovering_disk_; }
  bool RebuildInProgress() const { return rebuilding_; }
  bool ReconstructionInProgress() const { return reconstruction_active_; }
  bool ScrubInProgress() const { return scrub_active_; }

  // Parity-lag accounting (Section 3.2). Mean over [start, now].
  double MeanParityLagBytes() const { return unprot_bytes_.MeanTo(sim_->Now()); }
  double TUnprotFraction() const { return unprot_bytes_.PositiveFractionTo(sim_->Now()); }
  double CurrentParityLagBytes() const { return unprot_bytes_.Current(); }

  // Time-average client-idle fraction (no client requests in flight).
  double IdleFraction() const { return 1.0 - busy_clients_.PositiveFractionTo(sim_->Now()); }

  uint64_t DiskOps(DiskOpPurpose p) const {
    return disk_ops_[static_cast<size_t>(p)];
  }
  uint64_t TotalDiskOps() const;
  uint64_t StripesRebuilt() const { return stripes_rebuilt_; }
  uint64_t RebuildPasses() const { return rebuild_passes_; }
  // Idle windows the predictor judged too short to start a rebuild in.
  uint64_t PredictorSkips() const { return predictor_skips_; }
  const IdlePredictor& idle_predictor() const { return idle_predictor_; }
  uint64_t AfraidModeStripeWrites() const { return afraid_mode_writes_; }
  uint64_t Raid5ModeStripeWrites() const { return raid5_mode_writes_; }
  // True if the most recent stripe-write group took the RAID 5 path (the
  // "current mode" gauge the metrics snapshots sample).
  bool LastWriteModeRaid5() const { return last_write_raid5_; }
  int64_t MaxDirtyStripes() const { return max_dirty_; }
  uint64_t CacheHits() const { return read_cache_.Hits() + staging_.Hits(); }
  uint64_t LossEvents() const { return loss_events_; }
  int64_t BytesLost() const { return bytes_lost_; }

  // Observer of data-loss incidents (see array/scheme.h).
  void SetLossListener(LossListener listener) override {
    loss_listener_ = std::move(listener);
  }
  const ParityPolicy& policy() const { return *policy_; }

  // Functional read-back of current logical content (content tracking only):
  // per-sector values, reconstructing across a failed disk where possible.
  std::vector<uint64_t> ReadLogicalCurrent(int64_t offset, int64_t length) const;

  // Builds the policy context snapshot (exposed for tests).
  PolicyContext MakePolicyContext() const;

 private:
  // --- Client paths ---
  // The write-path plumbing hands pooled storage around: `segs` spans point
  // into a seg_pool_ vector owned by the request's join, `fin`/`group_join`
  // are pooled join blocks, and the callbacks must not retain any of them
  // past their completion (the arena reuse contract, see DESIGN.md).
  void DoRead(const ClientRequest& r, RequestDone done);
  void DoWrite(const ClientRequest& r, RequestDone done);
  void RunStripeWriteGroup(uint64_t request_id, int64_t stripe,
                           Span<Segment> segs, int32_t attempt,
                           JoinBlock* group_join);
  void AfraidWriteGroup(uint64_t request_id, int64_t stripe, Span<Segment> segs,
                        int32_t attempt, JoinBlock* group_join);
  void Raid5WriteGroup(uint64_t request_id, int64_t stripe, Span<Segment> segs,
                       int32_t attempt, JoinBlock* group_join);
  // Each runs `fin->Dec(ok)` exactly once when the whole step completes.
  void WriteFullStripe(uint64_t request_id, int64_t stripe, Span<Segment> segs,
                       JoinBlock* fin);
  void ReconstructWrite(uint64_t request_id, int64_t stripe, Span<Segment> segs,
                        JoinBlock* fin);
  void ReadModifyWrite(uint64_t request_id, int64_t stripe, Span<Segment> segs,
                       JoinBlock* fin);
  // Runs `parent->Dec(true)` when the reconstruction completes.
  void DegradedReadSegment(const Segment& seg, JoinBlock* parent);
  // Post-completion bookkeeping of one data-segment write (caches, content).
  void ApplyDataWrite(uint64_t request_id, const Segment& seg);

  // --- Rebuild engine ---
  void TriggerRebuildCheck();
  // The rebuilding_ flag only flips through these, so the trace's
  // rebuild-pass spans cannot drift out of sync with the engine state.
  void BeginRebuildPass();
  void EndRebuildPass();
  void RebuildNext();
  // Runs `step_join->Dec(ok)` when the band step completes.
  void RebuildBand(int64_t band_key, JoinBlock* step_join);

  // --- Recovery sweeps ---
  void ReconstructNextStripe(int64_t stripe);
  void ScrubNextStripe(int64_t stripe);

  // --- Helpers ---
  void IssueDiskOp(int32_t disk, int64_t byte_offset, int64_t length, bool is_write,
                   DiskOpPurpose purpose, DiskDone done);
  // Central loss accounting: updates the counters and notifies the listener.
  void RecordLoss(LossCause cause, int64_t stripe, int64_t bytes);

  // Sub-stripe marking (Section 5): the NVRAM bitmap is keyed by *band*,
  // band key = stripe * M + band, where band b covers byte range
  // [b*S/M, (b+1)*S/M) of every block in the stripe. M = 1 (the paper's
  // baseline) degenerates to one mark per stripe.
  int32_t BandsPerStripe() const { return cfg_.marks_per_stripe; }
  int64_t BandBytesPerStripe() const {
    return layout_->data_blocks_per_stripe() * layout_->stripe_unit() /
           cfg_.marks_per_stripe;
  }
  // Bands covered by a byte range within the stripe unit (inclusive).
  std::pair<int32_t, int32_t> BandsOfRange(int32_t offset_in_block,
                                           int32_t length) const;
  void MarkBands(int64_t stripe, int32_t first_band, int32_t last_band);
  void ClearBandKey(int64_t key);
  void ClearAllBands(int64_t stripe);
  bool AnyBandDirty(int64_t stripe) const;
  bool RangeDirty(int64_t stripe, int32_t offset_in_block, int32_t length) const;
  void NoteClientStart();
  void NoteClientEnd();
  bool ArrayBusy() const { return outstanding_clients_ > 0; }
  // Data-block cache key: global data-block index.
  int64_t BlockKey(int64_t stripe, int32_t j) const {
    return stripe * layout_->data_blocks_per_stripe() + j;
  }
  // True if writes must take the RAID 5 path right now (policy or degraded).
  bool WantRaid5Write();
  void CheckWatchers(int64_t cleared_stripe);
  // First dirty band key at/after `from` (wrapping) outside kNeverParity
  // regions; -1 if none.
  int64_t PickRebuildableKey(int64_t from) const;

  Simulator* sim_;
  ArrayConfig cfg_;
  std::unique_ptr<ParityPolicy> policy_;
  AvailabilityParams avail_params_;

  // Tracing handles (all null when observability is off).
  Probe ctrl_probe_;
  Probe rebuild_probe_;
  std::vector<Probe> disk_probes_;  // One per disk, same track as its DiskModel.

  std::vector<std::unique_ptr<DiskModel>> disks_;
  std::unique_ptr<ArrayLayout> layout_;
  StripeLockTable locks_;
  NvramBitmap nvram_;
  BlockLruCache read_cache_;
  BlockLruCache staging_;
  std::unique_ptr<ContentModel> content_;
  std::unique_ptr<IdleDetector> idle_detector_;

  // Request-path scratch arena: pooled joins, pooled per-request segment
  // vectors (alive until the request's join fires), pooled parity/delta
  // buffers, and synchronous-only scratch vectors reused across calls.
  JoinPool joins_;
  VecPool<Segment> seg_pool_;
  VecPool<uint64_t> u64_pool_;
  std::vector<Segment> read_split_scratch_;          // DoRead (synchronous).
  mutable std::vector<Segment> read_back_scratch_;   // ReadLogicalCurrent.
  std::vector<const Segment*> by_block_scratch_;     // Raid5WriteGroup.
  std::vector<const Segment*> need_read_scratch_;    // ReadModifyWrite.
  std::vector<uint64_t> parity_scratch_;             // Batched parity recompute.

  SimTime start_time_;
  int32_t outstanding_clients_ = 0;
  int32_t failed_disk_ = -1;
  // Replacement-disk recovery: stripes below the frontier hold valid data on
  // the recovering disk; at or above it, reads reconstruct via parity and
  // writes keep parity synchronous.
  int32_t recovering_disk_ = -1;
  int64_t recovery_frontier_ = 0;

  // Rebuild engine.
  bool rebuilding_ = false;
  int64_t rebuild_cursor_ = 0;
  uint64_t stripes_rebuilt_ = 0;
  uint64_t rebuild_passes_ = 0;

  // Idleness prediction (optional; Section 4.1 / [Golding95]).
  IdlePredictor idle_predictor_;
  SimTime idle_started_at_ = 0;
  // EWMA of observed per-band rebuild step durations, used as the quantum
  // the predictor must fit. Seeded with a few revolutions' worth.
  double rebuild_step_estimate_ns_ = 35e6;
  uint64_t predictor_skips_ = 0;

  // Recovery sweeps.
  bool reconstruction_active_ = false;
  std::function<void()> reconstruction_done_;
  bool scrub_active_ = false;
  std::function<void()> scrub_done_;

  // Paritypoint / quiesce watchers.
  struct Watcher {
    std::set<int64_t> waiting;
    std::function<void()> done;
  };
  std::vector<Watcher> watchers_;

  // Redundancy-class regions, newest-first precedence.
  struct Region {
    int64_t first_stripe;
    int64_t last_stripe;  // Inclusive.
    RedundancyClass cls;
  };
  std::vector<Region> regions_;

  // Accounting.
  TimeWeightedValue unprot_bytes_;
  TimeWeightedValue busy_clients_;
  std::array<uint64_t, static_cast<size_t>(DiskOpPurpose::kNumPurposes)> disk_ops_{};
  uint64_t afraid_mode_writes_ = 0;
  uint64_t raid5_mode_writes_ = 0;
  bool last_write_raid5_ = false;
  int64_t max_dirty_ = 0;
  uint64_t loss_events_ = 0;
  int64_t bytes_lost_ = 0;
  LossListener loss_listener_;
};

}  // namespace afraid

#endif  // AFRAID_CORE_AFRAID_CONTROLLER_H_
