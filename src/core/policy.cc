#include "core/policy.h"

#include <cassert>
#include <cstdio>

namespace afraid {
namespace {

class Raid0Policy final : public ParityPolicy {
 public:
  std::string Name() const override { return "RAID0"; }
  bool UseRaid5Write(const PolicyContext&) override { return false; }
  bool RebuildOnIdle(const PolicyContext&) override { return false; }
  bool ForceRebuild(const PolicyContext&) override { return false; }
};

class Raid5Policy final : public ParityPolicy {
 public:
  std::string Name() const override { return "RAID5"; }
  bool UseRaid5Write(const PolicyContext&) override { return true; }
  // If somehow switched into this policy with dirty stripes outstanding,
  // allow idle-time cleanup.
  bool RebuildOnIdle(const PolicyContext&) override { return true; }
  bool ForceRebuild(const PolicyContext& ctx) override { return ctx.dirty_stripes > 0; }
};

class BaselineAfraidPolicy final : public ParityPolicy {
 public:
  std::string Name() const override { return "AFRAID"; }
  bool UseRaid5Write(const PolicyContext&) override { return false; }
  bool RebuildOnIdle(const PolicyContext&) override { return true; }
  bool ForceRebuild(const PolicyContext&) override { return false; }
};

class MttdlTargetPolicy final : public ParityPolicy {
 public:
  MttdlTargetPolicy(double target_hours, int64_t stripe_threshold)
      : target_hours_(target_hours), stripe_threshold_(stripe_threshold) {
    assert(target_hours_ > 0.0);
  }

  // Reversion headroom: the achieved-MTTDL estimate can only *drift* back up
  // as protected time accrues, so the policy must react before the target is
  // actually crossed. Reverting at 1.3x the target keeps the delivered value
  // within a few percent of the goal (the paper: "never more than 5% below").
  static constexpr double kHeadroom = 1.3;
  // The forced-rebuild trigger uses a wider margin still: under load a
  // rebuild drains slowly (it queues behind foreground I/Os), so it must
  // start well before the reversion point is reached.
  static constexpr double kForceHeadroom = 2.0;

  std::string Name() const override {
    char buf[48];
    std::snprintf(buf, sizeof(buf), "MTTDL_%.3gM", target_hours_ / 1e6);
    return buf;
  }

  bool UseRaid5Write(const PolicyContext& ctx) override {
    // "It continuously calculates the MTTDL that has been achieved so far,
    // and reverts to RAID 5 mode if the goal is not being met."
    return AchievedMttdlHours(ctx) < target_hours_ * kHeadroom;
  }

  bool RebuildOnIdle(const PolicyContext&) override { return true; }

  bool ForceRebuild(const PolicyContext& ctx) override {
    // "...automatically starting a parity update when more than 20 stripes
    // are unprotected, even if the array is not idle"; also drain the dirty
    // backlog whenever we are below target.
    return ctx.dirty_stripes > stripe_threshold_ ||
           (ctx.dirty_stripes > 0 &&
            AchievedMttdlHours(ctx) < target_hours_ * kForceHeadroom);
  }

 private:
  double target_hours_;
  int64_t stripe_threshold_;
};

class StripeThresholdPolicy final : public ParityPolicy {
 public:
  explicit StripeThresholdPolicy(int64_t threshold) : threshold_(threshold) {}

  std::string Name() const override {
    char buf[48];
    std::snprintf(buf, sizeof(buf), "THRESH_%lld", static_cast<long long>(threshold_));
    return buf;
  }
  bool UseRaid5Write(const PolicyContext&) override { return false; }
  bool RebuildOnIdle(const PolicyContext&) override { return true; }
  bool ForceRebuild(const PolicyContext& ctx) override {
    return ctx.dirty_stripes > threshold_;
  }

 private:
  int64_t threshold_;
};

// Section 5: "An array could begin in a 'conservative' RAID 5 mode, and
// automatically switch into AFRAID behavior once it had determined that the
// I/O patterns included sufficient idle time to keep the redundancy deficit
// below some bound." We use the observed idle fraction with hysteresis: the
// array must first watch a warmup window, then switches to AFRAID while the
// idle fraction stays above the threshold; it falls back if idleness decays
// below 80% of the threshold.
class AutoSwitchPolicy final : public ParityPolicy {
 public:
  explicit AutoSwitchPolicy(double idle_fraction_needed)
      : needed_(idle_fraction_needed) {
    assert(needed_ > 0.0 && needed_ < 1.0);
  }

  std::string Name() const override {
    char buf[48];
    std::snprintf(buf, sizeof(buf), "AUTO_%.2f", needed_);
    return buf;
  }

  bool UseRaid5Write(const PolicyContext& ctx) override {
    if (ctx.elapsed < kWarmup) {
      return true;  // Conservative start.
    }
    if (afraid_mode_) {
      if (ctx.idle_fraction < 0.8 * needed_) {
        afraid_mode_ = false;
      }
    } else {
      if (ctx.idle_fraction >= needed_) {
        afraid_mode_ = true;
      }
    }
    return !afraid_mode_;
  }
  bool RebuildOnIdle(const PolicyContext&) override { return true; }
  bool ForceRebuild(const PolicyContext& ctx) override {
    // Falling back to RAID 5 also drains the dirty backlog.
    return !afraid_mode_ && ctx.dirty_stripes > 0;
  }

 private:
  static constexpr SimDuration kWarmup = Seconds(10);
  double needed_;
  bool afraid_mode_ = false;
};

}  // namespace

double AchievedMttdlHours(const PolicyContext& ctx) {
  assert(ctx.avail != nullptr);
  return MttdlAfraidHours(*ctx.avail, ctx.t_unprot_fraction);
}

std::string PolicySpec::Label() const {
  return MakePolicy(*this)->Name();
}

std::unique_ptr<ParityPolicy> MakePolicy(const PolicySpec& spec) {
  switch (spec.kind) {
    case PolicySpec::Kind::kRaid0:
      return std::make_unique<Raid0Policy>();
    case PolicySpec::Kind::kRaid5:
      return std::make_unique<Raid5Policy>();
    case PolicySpec::Kind::kAfraidBaseline:
      return std::make_unique<BaselineAfraidPolicy>();
    case PolicySpec::Kind::kMttdlTarget:
      return std::make_unique<MttdlTargetPolicy>(spec.mttdl_target_hours,
                                                 spec.stripe_threshold);
    case PolicySpec::Kind::kStripeThreshold:
      return std::make_unique<StripeThresholdPolicy>(spec.stripe_threshold);
    case PolicySpec::Kind::kAutoSwitch:
      return std::make_unique<AutoSwitchPolicy>(spec.idle_fraction_needed);
  }
  return nullptr;
}

RedundancyScheme SchemeFor(const PolicySpec& spec) {
  switch (spec.kind) {
    case PolicySpec::Kind::kRaid0:
      return RedundancyScheme::kRaid0;
    case PolicySpec::Kind::kRaid5:
      return RedundancyScheme::kRaid5;
    default:
      return RedundancyScheme::kAfraid;
  }
}

}  // namespace afraid
