// RAID 6 + AFRAID (Section 5 extension).
//
// "A RAID 6 array keeps two parity blocks for each stripe, and thus pays an
// even higher penalty for doing small updates than does RAID 5. The AFRAID
// technique could be combined with the RAID 6 parity scheme to delay either
// or both parity-block updates: if only one was deferred, partial redundancy
// protection would be available immediately, and full redundancy once the
// parity-rebuild happened for the other parity block."
//
// This controller implements the three operating points:
//   kSynchronous -- classic RAID 6: a small write pre-reads old data, old P
//                   and old Q, then writes data, P and Q (6 I/Os).
//   kDeferQ      -- data + P synchronous (4 I/Os, like RAID 5), Q deferred
//                   to idle time: single-failure tolerance immediately, dual
//                   tolerance after the rebuild.
//   kDeferBoth   -- pure AFRAID write (1 I/O); both parities rebuilt in idle.
//
// P is the xor parity; Q is the GF(256) Reed-Solomon parity
// Q = sum_j g^j D_j (see array/gf256.h). Per-stripe staleness is tracked in
// two NVRAM bitmaps (2 bits per stripe, vs AFRAID's 1). The focus of this
// class is write-path timing and parity consistency; the failure/recovery
// machinery lives in the RAID 5-family AfraidController.

#ifndef AFRAID_CORE_RAID6_CONTROLLER_H_
#define AFRAID_CORE_RAID6_CONTROLLER_H_

#include <cstdint>
#include <functional>
#include <string>
#include <memory>
#include <vector>

#include "array/content.h"
#include "array/controller.h"
#include "array/gf256.h"
#include "array/idle_detector.h"
#include "array/layout.h"
#include "array/nvram.h"
#include "array/stripe_lock.h"
#include "core/array_config.h"
#include "disk/disk_model.h"
#include "sim/arena.h"
#include "sim/simulator.h"
#include "stats/time_weighted.h"

namespace afraid {

enum class Raid6Mode {
  kSynchronous,  // Update P and Q in the write's critical path.
  kDeferQ,       // Update P synchronously; defer Q to idle periods.
  kDeferBoth,    // Defer P and Q (full AFRAID behaviour).
};

std::string Raid6ModeName(Raid6Mode mode);

class Raid6Controller : public ArrayController {
 public:
  Raid6Controller(Simulator* sim, const ArrayConfig& config, Raid6Mode mode);
  ~Raid6Controller() override;

  void Submit(const ClientRequest& request, RequestDone done) override;
  int64_t DataCapacityBytes() const override { return layout_.data_capacity_bytes(); }

  // Forces both parities of every stale stripe fresh; for tests/quiesce.
  void RebuildAll(std::function<void()> done);

  // --- Introspection ---
  const StripeLayout& layout() const { return layout_; }
  const ContentModel* content() const { return content_.get(); }
  Raid6Mode mode() const { return mode_; }
  int64_t StaleP() const { return p_stale_.DirtyCount(); }
  int64_t StaleQ() const { return q_stale_.DirtyCount(); }
  uint64_t StripesRebuilt() const { return stripes_rebuilt_; }
  uint64_t DiskOpsIssued() const { return disk_ops_; }
  // Time-average bytes covered by fewer than 2 / fewer than 1 parities.
  double MeanSingleExposedBytes() const { return q_only_stale_.MeanTo(sim_->Now()); }
  double MeanFullyExposedBytes() const { return both_stale_.MeanTo(sim_->Now()); }
  double TQStaleFraction() const { return q_only_stale_.PositiveFractionTo(sim_->Now()); }
  double TBothStaleFraction() const { return both_stale_.PositiveFractionTo(sim_->Now()); }

  // True iff stripe's P (and Q) match the data per the content model.
  bool StripeFullyConsistent(int64_t stripe) const;

  // Pure Q algebra (exposed for tests): Q value of one sector position.
  static uint64_t QOfData(const ContentModel& content, int64_t stripe,
                          int32_t data_blocks, int32_t sector);

 private:
  void DoRead(const ClientRequest& r, RequestDone done);
  void DoWrite(const ClientRequest& r, RequestDone done);
  void WriteStripeGroup(uint64_t request_id, int64_t stripe, Span<Segment> segs,
                        JoinBlock* group_join);
  void MaybeStartRebuild();
  void RebuildNext();
  void RebuildStripe(int64_t stripe, JoinBlock* step_join);
  void IssueDiskOp(int32_t disk, int64_t byte_offset, int64_t length, bool is_write,
                   DiskDone done);
  void MarkStale(int64_t stripe, bool p, bool q);
  void ClearStale(int64_t stripe);
  void UpdateExposure();
  void NoteClientStart();
  void NoteClientEnd();

  Simulator* sim_;
  ArrayConfig cfg_;
  Raid6Mode mode_;
  std::vector<std::unique_ptr<DiskModel>> disks_;
  StripeLayout layout_;
  StripeLockTable locks_;
  NvramBitmap p_stale_;
  NvramBitmap q_stale_;
  std::unique_ptr<ContentModel> content_;
  std::unique_ptr<IdleDetector> idle_detector_;

  // Steady-state pooled storage (see DESIGN.md, "Arena reuse contract"):
  // write splits live in a seg_pool_ vector owned by the request's join;
  // dp/dq parity deltas live in u64_pool_ vectors until the write join fires.
  JoinPool joins_;
  VecPool<Segment> seg_pool_;
  VecPool<uint64_t> u64_pool_;
  std::vector<Segment> read_split_scratch_;  // DoRead (synchronous).
  std::vector<uint64_t> parity_scratch_;     // Batched parity recompute.

  int32_t outstanding_clients_ = 0;
  bool rebuilding_ = false;
  int64_t rebuild_cursor_ = 0;
  uint64_t stripes_rebuilt_ = 0;
  uint64_t disk_ops_ = 0;
  std::function<void()> drain_done_;

  TimeWeightedValue q_only_stale_;  // Bytes protected by P only.
  TimeWeightedValue both_stale_;    // Bytes with no live parity.
};

}  // namespace afraid

#endif  // AFRAID_CORE_RAID6_CONTROLLER_H_
