// RAID 6 + AFRAID (Section 5 extension).
//
// "A RAID 6 array keeps two parity blocks for each stripe, and thus pays an
// even higher penalty for doing small updates than does RAID 5. The AFRAID
// technique could be combined with the RAID 6 parity scheme to delay either
// or both parity-block updates: if only one was deferred, partial redundancy
// protection would be available immediately, and full redundancy once the
// parity-rebuild happened for the other parity block."
//
// This controller implements the three operating points:
//   kSynchronous -- classic RAID 6: a small write pre-reads old data, old P
//                   and old Q, then writes data, P and Q (6 I/Os).
//   kDeferQ      -- data + P synchronous (4 I/Os, like RAID 5), Q deferred
//                   to idle time: single-failure tolerance immediately, dual
//                   tolerance after the rebuild.
//   kDeferBoth   -- pure AFRAID write (1 I/O); both parities rebuilt in idle.
//
// P is the xor parity; Q is the GF(256) Reed-Solomon parity
// Q = sum_j g^j D_j (see array/gf256.h). Per-stripe staleness is tracked in
// two NVRAM bitmaps (2 bits per stripe, vs AFRAID's 1).
//
// Failure machinery (ArrayScheme): single-disk failure with degraded reads
// (reconstruct through P when fresh, through Q when only P is stale),
// degraded writes that switch to synchronous full-stripe parity recompute,
// and a replacement-disk reconstruction sweep that recomputes the target
// from P, Q, or the surviving data as the stripe's layout dictates. A stripe
// whose P *and* Q were both stale when the disk died is unrecoverable; the
// machinery charges a LossEvent exactly as the AFRAID controller does.

#ifndef AFRAID_CORE_RAID6_CONTROLLER_H_
#define AFRAID_CORE_RAID6_CONTROLLER_H_

#include <cstdint>
#include <functional>
#include <string>
#include <memory>
#include <vector>

#include "array/content.h"
#include "array/controller.h"
#include "array/scheme.h"
#include "array/gf256.h"
#include "array/idle_detector.h"
#include "array/layout.h"
#include "array/nvram.h"
#include "array/stripe_lock.h"
#include "core/array_config.h"
#include "disk/disk_model.h"
#include "sim/arena.h"
#include "sim/simulator.h"
#include "stats/time_weighted.h"

namespace afraid {

enum class Raid6Mode {
  kSynchronous,  // Update P and Q in the write's critical path.
  kDeferQ,       // Update P synchronously; defer Q to idle periods.
  kDeferBoth,    // Defer P and Q (full AFRAID behaviour).
};

std::string Raid6ModeName(Raid6Mode mode);

class Raid6Controller : public ArrayScheme {
 public:
  Raid6Controller(Simulator* sim, const ArrayConfig& config, Raid6Mode mode);
  ~Raid6Controller() override;

  void Submit(const ClientRequest& request, RequestDone done) override;
  int64_t DataCapacityBytes() const override { return layout_->data_capacity_bytes(); }

  // Forces both parities of every stale stripe fresh; for tests/quiesce.
  void RebuildAll(std::function<void()> done);

  // --- ArrayScheme interface ---
  const char* SchemeName() const override;
  std::string PolicyLabel() const override { return Raid6ModeName(mode_); }
  int32_t num_disks() const override { return cfg_.num_disks; }
  DiskModel& disk(int32_t d) override { return *disks_[d]; }
  bool FailDisk(int32_t disk) override;
  bool ReplaceDisk(int32_t disk) override;
  bool StartReconstruction(std::function<void()> done) override;
  SchemeState State() const override;
  SchemeStats Stats() const override;
  void SetLossListener(LossListener listener) override {
    loss_listener_ = std::move(listener);
  }

  // --- Introspection ---
  const ArrayLayout& layout() const override { return *layout_; }
  const ContentModel* content() const override { return content_.get(); }
  Raid6Mode mode() const { return mode_; }
  int32_t failed_disk() const { return failed_disk_; }
  int32_t recovering_disk() const { return recovering_disk_; }
  uint64_t LossEvents() const { return loss_events_; }
  int64_t BytesLost() const { return bytes_lost_; }
  int64_t StaleP() const { return p_stale_.DirtyCount(); }
  int64_t StaleQ() const { return q_stale_.DirtyCount(); }
  uint64_t StripesRebuilt() const { return stripes_rebuilt_; }
  uint64_t DiskOpsIssued() const { return disk_ops_; }
  // Time-average bytes covered by fewer than 2 / fewer than 1 parities.
  double MeanSingleExposedBytes() const { return q_only_stale_.MeanTo(sim_->Now()); }
  double MeanFullyExposedBytes() const { return both_stale_.MeanTo(sim_->Now()); }
  double TQStaleFraction() const { return q_only_stale_.PositiveFractionTo(sim_->Now()); }
  double TBothStaleFraction() const { return both_stale_.PositiveFractionTo(sim_->Now()); }

  // True iff stripe's P (and Q) match the data per the content model.
  bool StripeFullyConsistent(int64_t stripe) const;

  // Pure Q algebra (exposed for tests): Q value of one sector position.
  static uint64_t QOfData(const ContentModel& content, int64_t stripe,
                          int32_t data_blocks, int32_t sector);

 private:
  void DoRead(const ClientRequest& r, RequestDone done);
  void DoWrite(const ClientRequest& r, RequestDone done);
  void WriteStripeGroup(uint64_t request_id, int64_t stripe, Span<Segment> segs,
                        JoinBlock* group_join);
  // Degraded path: reconstructs one read segment from the surviving blocks
  // and a live parity; runs `parent->Dec(true)` on completion.
  void DegradedReadSegment(const Segment& seg, JoinBlock* parent);
  // Degraded write: synchronous full-stripe P+Q recompute around the
  // unavailable disk (the RAID 6 analogue of AFRAID's forced RAID 5 mode).
  void DegradedWriteStripe(uint64_t request_id, int64_t stripe,
                           Span<Segment> segs, JoinBlock* group_join);
  void ReconstructNextStripe(int64_t stripe);
  // True when `disk` cannot serve valid data for `stripe` right now.
  bool DiskUnavailable(int32_t disk, int64_t stripe) const {
    return disk == failed_disk_ ||
           (disk == recovering_disk_ && stripe >= recovery_frontier_);
  }
  void RecordLoss(LossCause cause, int64_t stripe, int64_t bytes);
  void MaybeStartRebuild();
  void RebuildNext();
  void RebuildStripe(int64_t stripe, JoinBlock* step_join);
  void IssueDiskOp(int32_t disk, int64_t byte_offset, int64_t length, bool is_write,
                   DiskDone done);
  void MarkStale(int64_t stripe, bool p, bool q);
  void ClearStale(int64_t stripe);
  void UpdateExposure();
  void NoteClientStart();
  void NoteClientEnd();

  Simulator* sim_;
  ArrayConfig cfg_;
  Raid6Mode mode_;
  std::vector<std::unique_ptr<DiskModel>> disks_;
  std::unique_ptr<ArrayLayout> layout_;
  StripeLockTable locks_;
  NvramBitmap p_stale_;
  NvramBitmap q_stale_;
  std::unique_ptr<ContentModel> content_;
  std::unique_ptr<IdleDetector> idle_detector_;

  // Steady-state pooled storage (see DESIGN.md, "Arena reuse contract"):
  // write splits live in a seg_pool_ vector owned by the request's join;
  // dp/dq parity deltas live in u64_pool_ vectors until the write join fires.
  JoinPool joins_;
  VecPool<Segment> seg_pool_;
  VecPool<uint64_t> u64_pool_;
  std::vector<Segment> read_split_scratch_;  // DoRead (synchronous).
  std::vector<uint64_t> parity_scratch_;     // Batched parity recompute.

  int32_t outstanding_clients_ = 0;
  bool rebuilding_ = false;
  int64_t max_stale_stripes_ = 0;
  int64_t rebuild_cursor_ = 0;
  uint64_t stripes_rebuilt_ = 0;
  uint64_t disk_ops_ = 0;
  std::function<void()> drain_done_;

  // Failure machinery (mirrors the AfraidController state machine).
  int32_t failed_disk_ = -1;
  int32_t recovering_disk_ = -1;
  int64_t recovery_frontier_ = 0;
  bool reconstruction_active_ = false;
  std::function<void()> reconstruction_done_;
  uint64_t deferred_mode_writes_ = 0;  // Stripe writes with deferred parity.
  uint64_t sync_mode_writes_ = 0;      // Stripe writes with in-path parity.
  uint64_t loss_events_ = 0;
  int64_t bytes_lost_ = 0;
  LossListener loss_listener_;

  TimeWeightedValue q_only_stale_;  // Bytes protected by P only.
  TimeWeightedValue both_stale_;    // Bytes with no live parity.
};

}  // namespace afraid

#endif  // AFRAID_CORE_RAID6_CONTROLLER_H_
