// Per-run simulation results: the raw material of every table and figure.

#ifndef AFRAID_CORE_REPORT_H_
#define AFRAID_CORE_REPORT_H_

#include <cstdint>
#include <string>

#include "avail/model.h"

namespace afraid {

struct SimReport {
  std::string workload;
  std::string policy;

  // Request-level performance (milliseconds; measured driver-entry to
  // array-completion, open loop -- Section 4.1).
  uint64_t requests = 0;
  uint64_t reads = 0;
  uint64_t writes = 0;
  double mean_io_ms = 0.0;
  double mean_read_ms = 0.0;
  double mean_write_ms = 0.0;
  double median_io_ms = 0.0;
  double p95_io_ms = 0.0;
  double max_io_ms = 0.0;

  // Run shape.
  double duration_s = 0.0;        // Simulated seconds covered by the run.
  double idle_fraction = 0.0;     // Fraction of time with no client work.
  double mean_queue_depth = 0.0;  // Time-average requests in the driver.

  // AFRAID availability inputs (Section 3).
  double mean_parity_lag_bytes = 0.0;
  double t_unprot_fraction = 0.0;
  int64_t max_dirty_stripes = 0;

  // Mechanism counters.
  uint64_t stripes_rebuilt = 0;
  uint64_t rebuild_passes = 0;
  uint64_t afraid_mode_writes = 0;
  uint64_t raid5_mode_writes = 0;
  uint64_t disk_ops_total = 0;
  uint64_t disk_ops_rebuild = 0;
  uint64_t disk_ops_parity = 0;    // Synchronous parity writes + pre-reads.
  uint64_t cache_hits = 0;
  double disk_utilization = 0.0;   // Mean across disks.

  // Availability model outputs (attached by the harness).
  AvailabilityReport avail;
};

}  // namespace afraid

#endif  // AFRAID_CORE_REPORT_H_
