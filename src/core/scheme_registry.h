// Scheme registry: one construction API for every array scheme.
//
// Every redundancy scheme in the repo (AFRAID, synchronous/deferred RAID 6,
// parity logging, mirrored striping) implements the ArrayScheme interface;
// this registry maps the stable scheme-name strings used by CLIs, fleet
// configs and test grids onto factories, so harnesses can construct any
// scheme -- including ones registered later -- without a string-switch.
//
// Names are stable wire format (fleet reports, CI grids):
//   "afraid"        AfraidController (policy-driven deferred parity)
//   "raid6"         Raid6Controller, synchronous P+Q
//   "raid6-deferQ"  Raid6Controller, P synchronous / Q deferred
//   "raid6-deferPQ" Raid6Controller, both deferred
//   "parity-log"    ParityLogController
//   "mirror"        MirrorController (RAID 1/0, SPTF read dispatch)

#ifndef AFRAID_CORE_SCHEME_REGISTRY_H_
#define AFRAID_CORE_SCHEME_REGISTRY_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "array/scheme.h"
#include "avail/model.h"
#include "core/array_config.h"
#include "core/policy.h"
#include "obs/probe.h"
#include "sim/simulator.h"

namespace afraid {

// Everything a scheme factory may need. Factories ignore fields that do not
// apply to them (only "afraid" consults `policy`, `avail` and `probe`).
struct SchemeContext {
  Simulator* sim = nullptr;
  ArrayConfig config;
  PolicySpec policy = PolicySpec::AfraidBaseline();
  AvailabilityParams avail;
  Probe probe;
};

struct SchemeInfo {
  std::string name;
  std::string description;
  // Parity blocks the scheme's stripe layout uses (0 for mirroring). Used by
  // Normalize() to fix up ArrayConfig::parity_blocks before construction.
  int32_t parity_blocks = 1;
  // True when the scheme's behaviour is driven by a ParityPolicy spec.
  bool uses_policy = false;
  // True when the scheme requires an even number of disks (mirror pairs).
  bool requires_even_disks = false;
  // Section 3 scheme used to price availability for this controller when it
  // is not policy-driven ("afraid" derives it from the policy instead).
  RedundancyScheme avail_scheme = RedundancyScheme::kRaid5;
  // Constructs the controller. The context outlives the call only through
  // `ctx.sim`; everything else is copied.
  std::function<std::unique_ptr<ArrayScheme>(const SchemeContext& ctx)> create;
  // Client-visible data capacity for a config, without constructing the
  // controller (workload sizing needs this before the simulator exists).
  std::function<int64_t(const ArrayConfig& config)> data_capacity;
};

class SchemeRegistry {
 public:
  // Registers a scheme (replacing any previous entry with the same name).
  static void Register(SchemeInfo info);

  // nullptr when `name` is unknown.
  static const SchemeInfo* Find(const std::string& name);

  // Registered names, built-ins first, in registration order.
  static std::vector<std::string> List();

  // Copy of `config` adjusted so the named scheme can be constructed from
  // it: parity_blocks forced to the scheme's layout, and mirror widths
  // rounded down to an even disk count (minimum one pair).
  static ArrayConfig Normalize(const std::string& name, const ArrayConfig& config);

  // Data capacity of the normalised config under the named scheme.
  static int64_t DataCapacityBytes(const std::string& name, const ArrayConfig& config);

  // Constructs the named scheme (the context's config is normalised first).
  // Returns nullptr for unknown names.
  static std::unique_ptr<ArrayScheme> Create(const std::string& name,
                                             const SchemeContext& ctx);

  // Availability pricing scheme for a controller built as `name` under
  // `policy` (only "afraid" consults the policy).
  static RedundancyScheme AvailSchemeFor(const std::string& name,
                                         const PolicySpec& policy);
};

}  // namespace afraid

#endif  // AFRAID_CORE_SCHEME_REGISTRY_H_
