#!/usr/bin/env bash
# Regenerates every pinned artifact in one command:
#   * tests/golden/trace_replay_cello-usr_2000.txt -- the golden replay
#     transcript CI diffs byte-for-byte against a fresh run;
#   * BENCH_engine.json -- the micro-benchmark baseline the CI bench gate
#     compares hot-path timings to (loose factor, Release build);
#   * BENCH_rebuild.json -- the declustering rebuild comparison (window,
#     client p99 during rebuild, MTTDL) CI checks for layout ordering.
#
# Run from anywhere inside the repo after a change that intentionally moves
# pinned output, then review the diff before committing:
#
#   scripts/regen_goldens.sh
#   git diff tests/golden BENCH_engine.json BENCH_rebuild.json
#
# Uses its own Release build tree (build-regen/) so a Debug working build is
# never the source of a pinned baseline.
#
# All artifacts are staged in a temp directory and moved into place only after
# every step has succeeded: a failure partway through exits nonzero and leaves
# the pinned files exactly as they were (no half-regenerated baselines).

set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="$repo/build-regen"

stage="$(mktemp -d "${TMPDIR:-/tmp}/afraid-regen.XXXXXX")"
cleanup() {
  status=$?
  rm -rf "$stage"
  if [[ $status -ne 0 ]]; then
    echo "regen_goldens.sh: FAILED (exit $status); pinned artifacts untouched" >&2
  fi
  exit $status
}
trap cleanup EXIT

echo "== configuring Release build in $build"
cmake -B "$build" -S "$repo" -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "$build" -j --target trace_replay bench_micro_engine \
    bench_rebuild_decluster >/dev/null

echo "== regenerating tests/golden/trace_replay_cello-usr_2000.txt"
"$build/examples/trace_replay" cello-usr 2000 \
    > "$stage/trace_replay_cello-usr_2000.txt"

echo "== regenerating BENCH_engine.json (Release micro-bench baseline)"
"$build/bench/bench_micro_engine" \
    --benchmark_min_time=0.2 \
    --benchmark_out="$stage/BENCH_engine.json" \
    --benchmark_out_format=json >/dev/null

# The bench binary stamps its own optimization level into the JSON context
# (the "library_build_type" field describes the system benchmark *library*,
# which is a Debug build on Debian -- it says nothing about our code). A
# baseline produced by an unoptimized bench binary would make every later
# CI comparison meaningless, so refuse to pin one.
grep -q '"afraid_bench_optimized": "true"' "$stage/BENCH_engine.json" || {
  echo "regen_goldens.sh: bench_micro_engine was built without optimization" >&2
  echo "  (missing afraid_bench_optimized=true in BENCH_engine.json context)" >&2
  exit 1
}

echo "== regenerating BENCH_rebuild.json (declustering rebuild comparison)"
# The bench itself exits nonzero unless the declustered layout beats
# left-symmetric on both window and p99 at every width, so a regression
# can never be pinned as a baseline.
AFRAID_REBUILD_JSON="$stage/BENCH_rebuild.json" \
    "$build/bench/bench_rebuild_decluster" >/dev/null

# Every step succeeded: publish atomically (same-filesystem staging is not
# guaranteed, so mv may copy -- but only after all generators have passed).
mv "$stage/trace_replay_cello-usr_2000.txt" \
   "$repo/tests/golden/trace_replay_cello-usr_2000.txt"
mv "$stage/BENCH_engine.json" "$repo/BENCH_engine.json"
mv "$stage/BENCH_rebuild.json" "$repo/BENCH_rebuild.json"

echo "== done; review with: git diff tests/golden BENCH_engine.json BENCH_rebuild.json"
