// Availability what-if calculator: the Section 3 analytic models as a CLI.
//
// Answers the paper's style of question directly: "if my array spends X% of
// its time unprotected with Y KB of mean parity lag, what MTTDL and data-
// loss rate am I actually running at -- and does it matter next to the
// support hardware?"
//
//   $ ./examples/availability_whatif                 # defaults (Table 1)
//   $ ./examples/availability_whatif 0.05 512        # Tunprot=5%, lag=512KB
//   $ ./examples/availability_whatif 0.05 512 8 4e9  # 8-disk array, 4GB disks

#include <cstdio>
#include <cstdlib>

#include "avail/model.h"

using namespace afraid;

int main(int argc, char** argv) {
  const double t_unprot = argc > 1 ? std::atof(argv[1]) : 0.05;
  const double lag_bytes = (argc > 2 ? std::atof(argv[2]) : 256.0) * 1024.0;
  AvailabilityParams p;  // Table 1 defaults.
  if (argc > 3) {
    p.num_data_disks = std::atoi(argv[3]) - 1;
  }
  if (argc > 4) {
    p.disk_bytes = std::atof(argv[4]);
  }

  std::printf("array: %d disks of %.2g GB; MTTF(disk)=%.2g h raw, coverage %.0f%%,\n"
              "       support MTTDL %.2g h, MTTR %.0f h\n",
              p.TotalDisks(), p.disk_bytes / 1e9, p.mttf_disk_raw_hours,
              p.coverage * 100, p.mttdl_support_hours, p.mttr_hours);
  std::printf("inputs: Tunprot/Ttotal = %.4f, mean parity lag = %.1f KB\n\n", t_unprot,
              lag_bytes / 1024.0);

  std::printf("%-10s %14s %14s %14s %16s\n", "scheme", "MTTDL disk/h", "MTTDL all/h",
              "MDLR B/h", "P(loss in 3y) %");
  for (RedundancyScheme s :
       {RedundancyScheme::kRaid5, RedundancyScheme::kAfraid, RedundancyScheme::kRaid0}) {
    const AvailabilityReport r = MakeAvailabilityReport(p, s, t_unprot, lag_bytes);
    std::printf("%-10s %14.3g %14.3g %14.1f %16.2f\n", SchemeName(s).c_str(),
                r.mttdl_disk_hours, r.mttdl_overall_hours, r.mdlr_overall_bph,
                LossProbability(r.mttdl_overall_hours, 26e3) * 100.0);
  }

  std::printf("\ncontext (Sections 3.4-3.6):\n");
  std::printf("  a single-copy PrestoServe NVRAM card loses %16.1f B/h\n",
              MdlrNvramBph(15e3, 1 << 20));
  std::printf("  unprotected mains power would cap MTTDL at  %14.3g h\n",
              MttdlPowerHours(4300, 0.10));
  std::printf("  a 200k-hour UPS restores that to            %14.3g h\n",
              MttdlPowerHours(200e3, 0.10));
  std::printf("\nthe end-to-end availability argument: once the disk-related MTTDL\n"
              "clears a few million hours, the support hardware (%.2g h) is what\n"
              "fails first -- further disk-layer heroics buy nothing (Section 3.6).\n",
              p.mttdl_support_hours);
  return 0;
}
