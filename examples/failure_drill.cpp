// Failure drill: inject a disk failure mid-workload and walk through
// AFRAID's loss semantics -- what the Section 3 availability model prices.
//
// Shows: degraded reads via parity reconstruction; which stripes were
// unprotected at failure time (the AFRAID loss mode); replacement and
// reconstruction back to full redundancy; the per-incident accounting.
//
//   $ ./examples/failure_drill [seed]

#include <cstdio>
#include <cstdlib>

#include "array/host_driver.h"
#include "core/afraid_controller.h"
#include "core/experiment.h"
#include "sim/random.h"
#include "sim/simulator.h"

using namespace afraid;

int main(int argc, char** argv) {
  const uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;

  // A small array (tiny disks) so the reconstruction sweep is quick to watch.
  ArrayConfig cfg;
  cfg.disk_spec = DiskSpec::TinyTestDisk();
  cfg.num_disks = 5;
  cfg.stripe_unit_bytes = 8192;
  cfg.track_content = true;  // Functional verification of every byte.

  Simulator sim;
  AfraidController array(&sim, cfg, MakePolicy(PolicySpec::AfraidBaseline()),
                         AvailabilityParamsFor(cfg));
  HostDriver driver(&sim, &array, cfg.MaxActive());
  Rng rng(seed);

  // Phase 1: a bursty write workload; some stripes will be mid-exposure.
  std::printf("phase 1: writing 40 random blocks in bursts...\n");
  const int64_t blocks = array.DataCapacityBytes() / cfg.stripe_unit_bytes;
  for (int i = 0; i < 40; ++i) {
    driver.Submit(rng.UniformInt(0, blocks - 1) * cfg.stripe_unit_bytes,
                  static_cast<int32_t>(cfg.stripe_unit_bytes), /*is_write=*/true);
    if (rng.Bernoulli(0.25)) {
      sim.RunUntil(sim.Now() + Milliseconds(rng.UniformInt(20, 300)));
    }
  }
  while (!driver.Drained()) {
    sim.Step();
  }
  std::printf("  %lld stripes currently unprotected (parity lag %.0f KB)\n",
              static_cast<long long>(array.nvram().DirtyCount()),
              array.CurrentParityLagBytes() / 1024.0);

  // Phase 2: a disk dies *right now*, mid-exposure.
  const auto victim = static_cast<int32_t>(rng.UniformInt(0, cfg.num_disks - 1));
  const int64_t dirty_at_failure = array.nvram().DirtyCount();
  std::printf("\nphase 2: disk %d fails! (%lld stripes unprotected at that instant)\n",
              victim, static_cast<long long>(dirty_at_failure));
  array.FailDisk(victim);

  // Degraded reads still work -- each is reconstructed from the survivors.
  std::printf("  issuing reads in degraded mode...\n");
  for (int i = 0; i < 10; ++i) {
    driver.Submit(rng.UniformInt(0, blocks - 1) * cfg.stripe_unit_bytes,
                  static_cast<int32_t>(cfg.stripe_unit_bytes), /*is_write=*/false);
  }
  while (!driver.Drained()) {
    sim.Step();
  }
  std::printf("  degraded reads served: %llu reconstruct-reads issued\n",
              static_cast<unsigned long long>(
                  array.DiskOps(DiskOpPurpose::kReconstructRead)));

  // Phase 3: replace the disk and rebuild it.
  std::printf("\nphase 3: replacement installed; reconstructing %lld stripes...\n",
              static_cast<long long>(array.layout().num_stripes()));
  array.ReplaceDisk(victim);
  const SimTime recon_start = sim.Now();
  bool done = false;
  array.StartReconstruction([&done] { done = true; });
  sim.RunToEnd();
  std::printf("  reconstruction finished in %.1f simulated seconds\n",
              ToSeconds(sim.Now() - recon_start));

  // Phase 4: the bill. Stripes that were unprotected when the disk died and
  // had a data block on it are gone; everything else survived.
  std::printf("\nphase 4: damage report\n");
  std::printf("  loss events:  %llu\n",
              static_cast<unsigned long long>(array.LossEvents()));
  std::printf("  bytes lost:   %lld (out of %lld data bytes)\n",
              static_cast<long long>(array.BytesLost()),
              static_cast<long long>(array.DataCapacityBytes()));
  std::printf("  array fully redundant again: %s\n",
              array.nvram().DirtyCount() == 0 ? "yes" : "no");
  std::printf("\nCompare: a RAID 5 would have lost nothing (parity always fresh);\n"
              "a RAID 0 would have lost one disk in five of *everything*.\n"
              "AFRAID's exposure is bounded by the parity lag at failure time --\n"
              "the quantity its policies regulate.\n");
  return 0;
}
