// Failure drill: inject a disk failure mid-workload and walk through
// AFRAID's loss semantics -- what the Section 3 availability model prices.
//
// The drill itself is the faultsim subsystem's ExposureModel::FailureDrill:
// the exact code path the Monte-Carlo availability campaign
// (bench_mc_availability) runs thousands of times, here run once with
// per-incident narration from the controller's loss-event hooks.
//
//   $ ./examples/failure_drill [seed]

#include <cstdio>
#include <cstdlib>

#include "core/experiment.h"
#include "faultsim/exposure.h"
#include "sim/random.h"
#include "trace/workload_gen.h"

using namespace afraid;

int main(int argc, char** argv) {
  const uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;

  // A small array (tiny disks) so the reconstruction sweep is quick to watch.
  ArrayConfig cfg;
  cfg.disk_spec = DiskSpec::TinyTestDisk();
  cfg.num_disks = 5;
  cfg.stripe_unit_bytes = 8192;
  cfg.track_content = true;  // Functional verification of every byte.

  WorkloadParams workload = PaperWorkloads().front();
  ExposureModel exposure("afraid", cfg, PolicySpec::AfraidBaseline(), workload,
                         seed);
  const ArrayScheme& array = exposure.controller();

  // Phase 1: run the bursty workload, stopping at an instant when some
  // stripes are mid-exposure (between a write and its deferred parity
  // update) -- the window the AFRAID loss mode prices.
  std::printf("phase 1: running workload '%s' until stripes are exposed...\n",
              workload.name.c_str());
  exposure.Advance(Seconds(30));
  for (int i = 0; i < 4000 && exposure.DirtyBands() == 0; ++i) {
    exposure.Advance(Milliseconds(250));
  }
  std::printf("  %lld stripes currently unprotected (parity lag %.0f KB)\n",
              static_cast<long long>(exposure.DirtyBands()),
              exposure.CurrentParityLagBytes() / 1024.0);

  // Phase 2: a disk dies *right now*, with requests still in flight. The
  // drill lets outstanding work finish degraded, installs a replacement, and
  // runs the reconstruction sweep to completion.
  Rng rng(DeriveStreamSeed(seed, /*stream=*/1));
  const auto victim = static_cast<int32_t>(rng.UniformInt(0, cfg.num_disks - 1));
  std::printf("\nphase 2: disk %d fails mid-flight! running the drill...\n", victim);
  const DrillResult drill = exposure.FailureDrill(victim);
  std::printf("  %lld stripes were unprotected at the instant of failure\n",
              static_cast<long long>(drill.dirty_bands_at_failure));
  std::printf("  rebuild/reconstruct disk ops issued: %llu\n",
              static_cast<unsigned long long>(array.Stats().disk_ops_rebuild));
  std::printf("  recovery (drain + replace + reconstruct): %.1f simulated seconds\n",
              ToSeconds(drill.recovery_time));

  // Phase 3: the bill, incident by incident, from the controller's
  // loss-event hooks (the campaign's accounting, verbatim).
  std::printf("\nphase 3: damage report\n");
  for (const LossEvent& ev : drill.events) {
    std::printf("  t=%.3fs stripe %lld: lost %lld bytes (%s)\n",
                ToSeconds(ev.time), static_cast<long long>(ev.stripe),
                static_cast<long long>(ev.bytes), LossCauseName(ev.cause));
  }
  std::printf("  loss events:  %llu\n",
              static_cast<unsigned long long>(drill.loss_events));
  std::printf("  bytes lost:   %lld (out of %lld data bytes)\n",
              static_cast<long long>(drill.bytes_lost),
              static_cast<long long>(array.DataCapacityBytes()));
  std::printf("  array fully redundant again: %s\n",
              exposure.DirtyBands() == 0 ? "yes" : "no");
  std::printf("\nCompare: a RAID 5 would have lost nothing (parity always fresh);\n"
              "a RAID 0 would have lost one disk in five of *everything*.\n"
              "AFRAID's exposure is bounded by the parity lag at failure time --\n"
              "the quantity its policies regulate.\n");
  return 0;
}
