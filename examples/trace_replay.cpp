// Trace replay: the paper's core experiment as a command-line tool.
//
// Replays a workload (a named synthetic preset, or a trace file in the text
// format of src/trace/trace.h) against RAID 0, RAID 5 and AFRAID, and prints
// the latency and availability comparison.
//
//   $ ./examples/trace_replay                     # default: cello-usr
//   $ ./examples/trace_replay ATT 20000           # preset, request cap
//   $ ./examples/trace_replay /tmp/my_trace.txt   # replay a trace file
//
// Set AFRAID_OBS_DIR=<dir> to record each scheme's run: <dir>/<scheme>/ gets
// report.json, metrics.jsonl and a Chrome-trace timeline (trace.json) to open
// in chrome://tracing or https://ui.perfetto.dev. The printed comparison is
// identical with or without recording.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "array/layout.h"
#include "core/experiment.h"
#include "disk/geometry.h"
#include "trace/trace.h"
#include "trace/workload_gen.h"

using namespace afraid;

int main(int argc, char** argv) {
  const std::string which = argc > 1 ? argv[1] : "cello-usr";
  const uint64_t max_requests =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 10000;

  ArrayConfig cfg;
  cfg.disk_spec = DiskSpec::HpC3325Like();
  cfg.num_disks = 5;
  cfg.stripe_unit_bytes = 8192;

  // Resolve the workload: file path or preset name.
  Trace trace;
  WorkloadParams params;
  if (which.find('/') != std::string::npos) {
    if (!ReadTraceFile(which, &trace)) {
      std::fprintf(stderr, "cannot read trace file %s\n", which.c_str());
      return 1;
    }
    std::printf("replaying trace file %s (%zu records)\n", which.c_str(),
                trace.Size());
  } else if (FindWorkload(which, &params)) {
    const StripeLayout layout(cfg.num_disks, cfg.stripe_unit_bytes,
                              DiskGeometry(cfg.disk_spec.zones, cfg.disk_spec.heads,
                                           cfg.disk_spec.sector_bytes)
                                  .CapacityBytes(),
                              cfg.parity_blocks);
    params.address_space_bytes = layout.data_capacity_bytes();
    trace = GenerateWorkload(params, max_requests, Hours(24));
    const TraceStats stats = ComputeTraceStats(trace);
    std::printf("workload %s: %zu requests over %.1f s, %.0f%% writes, "
                "mean size %.1f KB, %.0f%% of time in >100ms arrival gaps\n",
                which.c_str(), trace.Size(), ToSeconds(trace.Duration()),
                stats.write_fraction * 100, stats.mean_size_bytes / 1024.0,
                stats.idle_fraction_100ms * 100);
  } else {
    std::fprintf(stderr, "unknown workload '%s'; presets:\n", which.c_str());
    for (const WorkloadParams& p : PaperWorkloads()) {
      std::fprintf(stderr, "  %s\n", p.name.c_str());
    }
    return 1;
  }

  const char* obs_env = std::getenv("AFRAID_OBS_DIR");
  const std::string obs_dir = obs_env != nullptr ? obs_env : "";

  std::printf("\n%-10s %10s %10s %10s %10s %12s %12s\n", "scheme", "mean ms",
              "median", "95th", "max", "MTTDL all/h", "MDLR B/h");
  for (const PolicySpec& spec :
       {PolicySpec::Raid5(), PolicySpec::AfraidBaseline(), PolicySpec::Raid0()}) {
    Experiment exp(cfg);
    exp.Policy(spec).Trace(trace);
    if (!obs_dir.empty()) {
      ObserveOptions opts;
      opts.artifacts_dir = obs_dir + "/" + spec.Label();
      exp.Observe(opts);
    }
    const SimReport rep = exp.Run();
    std::printf("%-10s %10.2f %10.2f %10.2f %10.1f %12.3g %12.1f\n",
                rep.policy.c_str(), rep.mean_io_ms, rep.median_io_ms, rep.p95_io_ms,
                rep.max_io_ms, rep.avail.mttdl_overall_hours,
                rep.avail.mdlr_overall_bph);
  }
  std::printf("\nAFRAID goal: RAID 0-like latency, RAID 5-like availability.\n");
  if (!obs_dir.empty()) {
    std::fprintf(stderr, "recorded run artifacts under %s/<scheme>/\n",
                 obs_dir.c_str());
  }
  return 0;
}
