// Trace replay: the paper's core experiment as a command-line tool.
//
// Replays a workload (a named synthetic preset, or a trace file in the text
// format of src/trace/trace.h) against RAID 0, RAID 5 and AFRAID, and prints
// the latency and availability comparison.
//
//   $ ./examples/trace_replay                     # default: cello-usr
//   $ ./examples/trace_replay ATT 20000           # preset, request cap
//   $ ./examples/trace_replay /tmp/my_trace.txt   # replay a trace file
//
// Flags (before or after the positional arguments):
//   --scheme NAME       replay on one registered array scheme
//                       (src/core/scheme_registry.h) instead of the default
//                       RAID 0 / RAID 5 / AFRAID comparison; `--scheme list`
//                       prints the registry and exits
//   --stream            replay through the fixed-memory streaming pipeline
//                       (TraceChunkReader + StreamingPlanCompiler) instead of
//                       loading the whole trace; prints a trailing
//                       "streaming:" line with peak plan-segment memory
//   --chunk-bytes N     streaming read-chunk size (default 4 MiB)
//   --record PATH       write the resolved workload to PATH in the text trace
//                       format and exit (pin a synthetic preset to disk)
//   --layout NAME       parity layout: left-symmetric (default) or
//                       declustered (block-design placement, stripes narrower
//                       than the array for fast balanced rebuild)
//   --decluster-width K declustered stripe width (units per stripe incl.
//                       parity); 0 picks a width near half the array
//
// Without flags the output is byte-identical to the pinned golden transcript;
// with --stream only the first line and the trailing "streaming:" line differ
// from the monolithic replay of the same trace.
//
// Set AFRAID_OBS_DIR=<dir> to record each scheme's run: <dir>/<scheme>/ gets
// report.json, metrics.jsonl and a Chrome-trace timeline (trace.json) to open
// in chrome://tracing or https://ui.perfetto.dev. The printed comparison is
// identical with or without recording.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include <algorithm>
#include <vector>

#include "array/decluster.h"
#include "array/layout.h"
#include "core/experiment.h"
#include "core/scheme_registry.h"
#include "disk/geometry.h"
#include "trace/recorder.h"
#include "trace/trace.h"
#include "trace/workload_gen.h"

using namespace afraid;

int main(int argc, char** argv) {
  bool stream = false;
  size_t chunk_bytes = 4u << 20;
  std::string record_path;
  std::string scheme;
  LayoutKind layout = LayoutKind::kLeftSymmetric;
  int32_t decluster_width = 0;
  std::vector<std::string> pos;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--stream") {
      stream = true;
    } else if (arg == "--chunk-bytes" && i + 1 < argc) {
      chunk_bytes = static_cast<size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (arg == "--record" && i + 1 < argc) {
      record_path = argv[++i];
    } else if (arg == "--scheme" && i + 1 < argc) {
      scheme = argv[++i];
    } else if (arg == "--layout" && i + 1 < argc) {
      if (!LayoutKindFromName(argv[++i], &layout)) {
        std::fprintf(stderr,
                     "unknown layout '%s' (left-symmetric | declustered)\n",
                     argv[i]);
        return 2;
      }
    } else if (arg == "--decluster-width" && i + 1 < argc) {
      decluster_width = static_cast<int32_t>(std::strtol(argv[++i], nullptr, 10));
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
      return 2;
    } else {
      pos.push_back(arg);
    }
  }
  if (scheme == "list") {
    for (const std::string& name : SchemeRegistry::List()) {
      std::printf("%-14s %s\n", name.c_str(),
                  SchemeRegistry::Find(name)->description.c_str());
    }
    return 0;
  }
  if (!scheme.empty() && SchemeRegistry::Find(scheme) == nullptr) {
    std::fprintf(stderr, "unknown scheme '%s' (try '--scheme list')\n",
                 scheme.c_str());
    return 2;
  }
  const std::string which = !pos.empty() ? pos[0] : "cello-usr";
  const uint64_t max_requests =
      pos.size() > 1 ? std::strtoull(pos[1].c_str(), nullptr, 10) : 10000;

  ArrayConfig cfg;
  cfg.disk_spec = DiskSpec::HpC3325Like();
  cfg.num_disks = 5;
  cfg.stripe_unit_bytes = 8192;
  cfg.layout = layout;
  cfg.decluster_width = decluster_width;

  // Resolve the workload: file path or preset name. In streaming mode a file
  // input is never loaded whole -- that is the point of the pipeline.
  Trace trace;
  WorkloadParams params;
  std::string stream_path;    // Set when --stream: the file actually replayed.
  std::string temp_path;      // Synthetic preset pinned to disk for streaming.
  const bool is_file = which.find('/') != std::string::npos;
  if (is_file && stream && record_path.empty()) {
    stream_path = which;
    std::printf("replaying trace file %s (streaming, %zu-byte chunks)\n",
                which.c_str(), chunk_bytes);
  } else if (is_file) {
    if (!ReadTraceFile(which, &trace)) {
      std::fprintf(stderr, "cannot read trace file %s\n", which.c_str());
      return 1;
    }
    std::printf("replaying trace file %s (%zu records)\n", which.c_str(),
                trace.Size());
  } else if (FindWorkload(which, &params)) {
    if (!scheme.empty()) {
      // One scheme: size offsets to its client-visible capacity (smaller than
      // RAID 5's for mirroring and parity logging).
      params.address_space_bytes = SchemeRegistry::DataCapacityBytes(scheme, cfg);
    } else {
      const auto lay =
          MakeLayout(cfg.layout, cfg.num_disks, cfg.stripe_unit_bytes,
                     DiskGeometry(cfg.disk_spec.zones, cfg.disk_spec.heads,
                                  cfg.disk_spec.sector_bytes)
                         .CapacityBytes(),
                     cfg.parity_blocks, cfg.decluster_width);
      params.address_space_bytes = lay->data_capacity_bytes();
    }
    trace = GenerateWorkload(params, max_requests, Hours(24));
    const TraceStats stats = ComputeTraceStats(trace);
    std::printf("workload %s: %zu requests over %.1f s, %.0f%% writes, "
                "mean size %.1f KB, %.0f%% of time in >100ms arrival gaps\n",
                which.c_str(), trace.Size(), ToSeconds(trace.Duration()),
                stats.write_fraction * 100, stats.mean_size_bytes / 1024.0,
                stats.idle_fraction_100ms * 100);
  } else {
    std::fprintf(stderr, "unknown workload '%s'; presets:\n", which.c_str());
    for (const WorkloadParams& p : PaperWorkloads()) {
      std::fprintf(stderr, "  %s\n", p.name.c_str());
    }
    return 1;
  }

  if (!record_path.empty()) {
    const TraceStatus st = RecordTrace(trace, record_path);
    if (!st.ok) {
      std::fprintf(stderr, "record failed: %s\n", st.message.c_str());
      return 1;
    }
    std::fprintf(stderr, "recorded %zu records to %s\n", trace.Size(),
                 record_path.c_str());
    return 0;
  }
  if (stream && stream_path.empty()) {
    // Pin the generated workload so the streaming pipeline has a file to
    // chunk through; removed before exit.
    temp_path = "/tmp/afraid_trace_replay_stream.txt";
    const TraceStatus st = RecordTrace(trace, temp_path);
    if (!st.ok) {
      std::fprintf(stderr, "cannot write %s: %s\n", temp_path.c_str(),
                   st.message.c_str());
      return 1;
    }
    stream_path = temp_path;
  }

  const char* obs_env = std::getenv("AFRAID_OBS_DIR");
  const std::string obs_dir = obs_env != nullptr ? obs_env : "";

  StreamStats peak;  // Max across the schemes (they ingest identically).
  // Default: the paper's three-way policy comparison on the AFRAID scheme.
  // --scheme NAME: one row, any registered organization.
  std::vector<PolicySpec> specs;
  if (scheme.empty()) {
    specs = {PolicySpec::Raid5(), PolicySpec::AfraidBaseline(),
             PolicySpec::Raid0()};
  } else {
    specs = {PolicySpec::AfraidBaseline()};
  }
  std::printf("\n%-10s %10s %10s %10s %10s %12s %12s\n", "scheme", "mean ms",
              "median", "95th", "max", "MTTDL all/h", "MDLR B/h");
  for (const PolicySpec& spec : specs) {
    Experiment exp(cfg);
    exp.Policy(spec);
    if (!scheme.empty()) {
      exp.Scheme(scheme);
    }
    if (stream) {
      StreamOptions sopts;
      sopts.chunk_bytes = chunk_bytes;
      exp.TraceFile(stream_path, sopts);
    } else {
      exp.Trace(trace);
    }
    if (!obs_dir.empty()) {
      ObserveOptions opts;
      opts.artifacts_dir = obs_dir + "/" + (scheme.empty() ? spec.Label() : scheme);
      exp.Observe(opts);
    }
    const SimReport rep = exp.Run();
    if (stream && !exp.trace_status().ok) {
      std::fprintf(stderr, "stream replay failed at line %lld: %s\n",
                   static_cast<long long>(exp.trace_status().line),
                   exp.trace_status().message.c_str());
      return 1;
    }
    if (stream) {
      const StreamStats& s = exp.stream_stats();
      peak.chunks = std::max(peak.chunks, s.chunks);
      peak.records = std::max(peak.records, s.records);
      peak.peak_plan_bytes = std::max(peak.peak_plan_bytes, s.peak_plan_bytes);
      peak.peak_buffer_bytes =
          std::max(peak.peak_buffer_bytes, s.peak_buffer_bytes);
      peak.ring_slots = std::max(peak.ring_slots, s.ring_slots);
    }
    std::printf("%-10s %10.2f %10.2f %10.2f %10.1f %12.3g %12.1f\n",
                rep.policy.c_str(), rep.mean_io_ms, rep.median_io_ms, rep.p95_io_ms,
                rep.max_io_ms, rep.avail.mttdl_overall_hours,
                rep.avail.mdlr_overall_bph);
  }
  std::printf("\nAFRAID goal: RAID 0-like latency, RAID 5-like availability.\n");
  if (stream) {
    std::printf("streaming: chunk_bytes=%zu chunks=%lld records=%llu "
                "peak_plan_bytes=%zu ring_slots=%d peak_buffer_bytes=%zu\n",
                chunk_bytes, static_cast<long long>(peak.chunks),
                static_cast<unsigned long long>(peak.records),
                peak.peak_plan_bytes, peak.ring_slots, peak.peak_buffer_bytes);
  }
  if (!temp_path.empty()) std::remove(temp_path.c_str());
  if (!obs_dir.empty()) {
    std::fprintf(stderr, "recorded run artifacts under %s/<scheme>/\n",
                 obs_dir.c_str());
  }
  return 0;
}
