// Monte-Carlo availability in miniature: run a small fault-injection
// campaign for one policy and compare the empirical MTTDL/MDLR with the
// Section 3 analytic model.
//
// This is the minimal-code tour of src/faultsim/: build a CampaignConfig,
// run it on a thread pool, print the comparison. The full four-policy
// campaign with CI tables lives in bench/bench_mc_availability.cc.
//
//   $ ./examples/availability_mc [lifetimes] [seed]

#include <cstdio>
#include <cstdlib>

#include "core/experiment.h"
#include "faultsim/report.h"
#include "faultsim/runner.h"
#include "trace/workload_gen.h"

using namespace afraid;

int main(int argc, char** argv) {
  const int32_t lifetimes =
      argc > 1 ? static_cast<int32_t>(std::strtol(argv[1], nullptr, 10)) : 60;
  const uint64_t seed =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 1996;

  CampaignConfig c;
  c.array.disk_spec = DiskSpec::TinyTestDisk();  // Small: drills sweep all stripes.
  c.array.num_disks = 5;
  c.array.stripe_unit_bytes = 8192;
  c.policy = PolicySpec::AfraidBaseline();
  c.workload = PaperWorkloads().front();
  c.faults = FaultModelParams::From(AvailabilityParamsFor(c.array),
                                    SchemeFor(c.policy));
  c.lifetimes = lifetimes;
  c.base_seed = seed;
  c.max_lifetime_hours = 5e7;

  std::printf("running %d simulated array lifetimes of '%s' under workload '%s'...\n",
              c.lifetimes, c.policy.Label().c_str(), c.workload.name.c_str());
  const CampaignSummary summary = RunCampaign(c, /*num_threads=*/0);
  const SchemeComparison cmp = CompareWithModel(c, summary);

  std::printf("\n  disk failures injected:   %llu (plus %llu predicted & averted)\n",
              static_cast<unsigned long long>(summary.disk_failures),
              static_cast<unsigned long long>(summary.predicted_averted));
  std::printf("  failure drills run:       %llu (faults landing on a dirty array)\n",
              static_cast<unsigned long long>(summary.drills));
  std::printf("  lifetimes ending in loss: %llu of %d\n",
              static_cast<unsigned long long>(summary.loss_events), c.lifetimes);
  std::printf("  measured t_unprot:        %.4f   parity lag: %.1f KB\n\n",
              summary.mean_t_unprot_fraction,
              summary.mean_parity_lag_bytes / 1024.0);

  PrintComparisonTable(stdout, {cmp});

  std::printf("\nEvery lifetime is a pure function of (config, index): rerunning\n"
              "with the same seed reproduces these numbers exactly, on any\n"
              "thread count.\n");
  return 0;
}
