// Monte-Carlo availability in miniature: run a small fault-injection
// campaign for one policy and compare the empirical MTTDL/MDLR with the
// Section 3 analytic model.
//
// This is the minimal-code tour of src/faultsim/: build a CampaignConfig,
// run it on a thread pool, print the comparison. The full four-policy
// campaign with CI tables lives in bench/bench_mc_availability.cc.
//
//   $ ./examples/availability_mc [lifetimes] [seed]
//
// Flags (rare-event acceleration and campaign shape):
//   --vr=off|forcing|biasing  variance reduction mode (default off)
//   --bias=B                  failure-rate inflation for --vr=biasing (default 8)
//   --cap=HOURS               per-lifetime cap (default 5e7)
//   --lifetimes=N --seed=S    same as the positional arguments
//   --threads=T               worker threads (default: sweep default)
//   --json=PATH               also emit the machine-readable report

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/experiment.h"
#include "faultsim/report.h"
#include "faultsim/runner.h"
#include "trace/workload_gen.h"

using namespace afraid;

int main(int argc, char** argv) {
  int32_t lifetimes = 60;
  uint64_t seed = 1996;
  double cap_hours = 5e7;
  int32_t threads = 0;
  VarianceReduction vr;
  const char* json_path = nullptr;

  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto flag_value = [&](const char* prefix) -> const char* {
      const size_t n = std::strlen(prefix);
      return std::strncmp(arg, prefix, n) == 0 ? arg + n : nullptr;
    };
    if (const char* v = flag_value("--vr=")) {
      if (!ParseVrMode(v, &vr.mode)) {
        std::fprintf(stderr, "unknown --vr mode '%s' (off|forcing|biasing)\n", v);
        return 1;
      }
    } else if (const char* v = flag_value("--bias=")) {
      vr.failure_bias = std::strtod(v, nullptr);
      if (vr.failure_bias <= 0.0) {
        std::fprintf(stderr, "--bias must be positive\n");
        return 1;
      }
    } else if (const char* v = flag_value("--cap=")) {
      cap_hours = std::strtod(v, nullptr);
    } else if (const char* v = flag_value("--lifetimes=")) {
      lifetimes = static_cast<int32_t>(std::strtol(v, nullptr, 10));
    } else if (const char* v = flag_value("--seed=")) {
      seed = std::strtoull(v, nullptr, 10);
    } else if (const char* v = flag_value("--threads=")) {
      threads = static_cast<int32_t>(std::strtol(v, nullptr, 10));
    } else if (const char* v = flag_value("--json=")) {
      json_path = v;
    } else if (std::strncmp(arg, "--", 2) != 0 && positional < 2) {
      if (positional == 0) {
        lifetimes = static_cast<int32_t>(std::strtol(arg, nullptr, 10));
      } else {
        seed = std::strtoull(arg, nullptr, 10);
      }
      ++positional;
    } else {
      std::fprintf(stderr, "unknown argument '%s'\n", arg);
      return 1;
    }
  }

  CampaignConfig c;
  c.array.disk_spec = DiskSpec::TinyTestDisk();  // Small: drills sweep all stripes.
  c.array.num_disks = 5;
  c.array.stripe_unit_bytes = 8192;
  c.policy = PolicySpec::AfraidBaseline();
  c.workload = PaperWorkloads().front();
  c.faults = FaultModelParams::From(AvailabilityParamsFor(c.array),
                                    SchemeFor(c.policy));
  c.lifetimes = lifetimes;
  c.base_seed = seed;
  c.max_lifetime_hours = cap_hours;
  c.vr = vr;

  std::printf("running %d simulated array lifetimes of '%s' under workload '%s'...\n",
              c.lifetimes, c.policy.Label().c_str(), c.workload.name.c_str());
  const CampaignSummary summary = RunCampaign(c, threads);
  const SchemeComparison cmp = CompareWithModel(c, summary);

  std::printf("\n  disk failures injected:   %llu (plus %llu predicted & averted)\n",
              static_cast<unsigned long long>(summary.disk_failures),
              static_cast<unsigned long long>(summary.predicted_averted));
  std::printf("  failure drills run:       %llu (faults landing on a dirty array)\n",
              static_cast<unsigned long long>(summary.drills));
  std::printf("  lifetimes ending in loss: %llu of %d\n",
              static_cast<unsigned long long>(summary.loss_events), c.lifetimes);
  if (vr.Enabled()) {
    std::printf("  variance reduction:       %s x%g, effective sample size %.1f of %d\n",
                VrModeName(vr.mode), vr.RateMultiplier(), summary.ess,
                c.lifetimes);
  }
  std::printf("  measured t_unprot:        %.4f   parity lag: %.1f KB\n\n",
              summary.mean_t_unprot_fraction,
              summary.mean_parity_lag_bytes / 1024.0);

  PrintComparisonTable(stdout, {cmp});

  if (json_path != nullptr) {
    if (!WriteTextFile(json_path, ComparisonJson({cmp}))) {
      std::fprintf(stderr, "failed to write %s\n", json_path);
      return 1;
    }
    std::printf("wrote %s\n", json_path);
  }

  std::printf("\nEvery lifetime is a pure function of (config, index): rerunning\n"
              "with the same seed reproduces these numbers exactly, on any\n"
              "thread count.\n");
  return 0;
}
