// Policy explorer: sweep MTTDL_x targets on one workload and print the
// performance/availability frontier -- a single-workload slice of the
// paper's Figure 3, plus the Section 5 refinement policies.
//
//   $ ./examples/policy_explorer snake
//   $ ./examples/policy_explorer ATT 20000

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "trace/workload_gen.h"

using namespace afraid;

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "cello-news";
  const uint64_t max_requests =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 8000;

  WorkloadParams wl;
  if (!FindWorkload(name, &wl)) {
    std::fprintf(stderr, "unknown workload '%s'\n", name.c_str());
    return 1;
  }
  ArrayConfig cfg;
  cfg.disk_spec = DiskSpec::HpC3325Like();
  cfg.num_disks = 5;

  std::vector<PolicySpec> sweep = {
      PolicySpec::Raid5(),
      PolicySpec::MttdlTarget(10e6),
      PolicySpec::MttdlTarget(3e6),
      PolicySpec::MttdlTarget(1e6),
      PolicySpec::MttdlTarget(0.5e6),
      PolicySpec::MttdlTarget(0.25e6),
      PolicySpec::StripeThreshold(20),
      PolicySpec::AutoSwitch(0.3),
      PolicySpec::AfraidBaseline(),
      PolicySpec::Raid0(),
  };

  std::printf("workload %s, %llu requests; sweeping parity-update policies\n\n",
              name.c_str(), static_cast<unsigned long long>(max_requests));
  std::printf("%-12s %10s %9s %12s %12s %10s %10s\n", "policy", "mean ms", "Tunprot",
              "MTTDLdisk/h", "MTTDLall/h", "r5-writes", "rebuilds");
  const SimReport raid5 =
      Experiment(cfg).Policy(PolicySpec::Raid5()).Workload(wl, max_requests, Hours(24))
          .Run();
  for (const PolicySpec& spec : sweep) {
    const SimReport rep = Experiment(cfg).Policy(spec).Workload(wl, max_requests, Hours(24))
        .Run();
    std::printf("%-12s %10.2f %9.4f %12.3g %12.3g %10llu %10llu", rep.policy.c_str(),
                rep.mean_io_ms, rep.t_unprot_fraction, rep.avail.mttdl_disk_hours,
                rep.avail.mttdl_overall_hours,
                static_cast<unsigned long long>(rep.raid5_mode_writes),
                static_cast<unsigned long long>(rep.stripes_rebuilt));
    if (rep.mean_io_ms > 0 && spec.kind != PolicySpec::Kind::kRaid5) {
      std::printf("   (%.2fx RAID 5)", raid5.mean_io_ms / rep.mean_io_ms);
    }
    std::printf("\n");
  }
  std::printf("\nOnce a desired level of availability has been specified, an AFRAID\n"
              "array translates any unneeded redundancy into performance (Section 4.4).\n");
  return 0;
}
