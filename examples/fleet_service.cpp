// Fleet service: one large logical volume striped over many independent
// arrays, serving over a thousand tenant sessions at once -- with a disk
// failure and an online repair injected mid-run on one shard while the rest
// of the fleet keeps serving.
//
//   $ ./examples/fleet_service [flags] [scheme] [requests]
//
// scheme: any registry name (afraid | raid6 | raid6-deferQ | raid6-deferPQ |
// parity-log | mirror), or "raid5" (afraid under the always-sync policy), or
// "list" to print the registered schemes and exit.
//
// Flags:
//   --layout NAME       per-shard parity layout: left-symmetric (default) or
//                       declustered (narrow block-design stripes, fast rebuild)
//   --decluster-width K declustered stripe width; 0 = auto (~half the array)
//   --spares N          per-shard hot-spare pool: repairs draw from the pool
//                       and are refused when it is empty; a spare_add op
//                       restocks mid-run (default: unlimited legacy stock)
//
// The run is bit-identical for any AFRAID_BENCH_THREADS (every shard is an
// independent deterministic simulation; the sweep only changes who runs
// which cell when). Set AFRAID_OBS_DIR=<dir> to record <dir>/fleet.json and
// a per-shard Chrome trace under <dir>/shard<k>/trace.json.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "array/layout.h"
#include "core/scheme_registry.h"
#include "fleet/tenants.h"
#include "fleet/volume_manager.h"

using namespace afraid;

int main(int argc, char** argv) {
  LayoutKind layout = LayoutKind::kLeftSymmetric;
  int32_t decluster_width = 0;
  int32_t spares = -1;
  std::vector<std::string> pos;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--layout" && i + 1 < argc) {
      if (!LayoutKindFromName(argv[++i], &layout)) {
        std::fprintf(stderr,
                     "unknown layout '%s' (left-symmetric | declustered)\n",
                     argv[i]);
        return 2;
      }
    } else if (arg == "--decluster-width" && i + 1 < argc) {
      decluster_width = static_cast<int32_t>(std::strtol(argv[++i], nullptr, 10));
    } else if (arg == "--spares" && i + 1 < argc) {
      spares = static_cast<int32_t>(std::strtol(argv[++i], nullptr, 10));
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
      return 2;
    } else {
      pos.push_back(arg);
    }
  }
  const std::string scheme_arg = !pos.empty() ? pos[0] : "afraid";
  const uint64_t requests =
      pos.size() > 1 ? std::strtoull(pos[1].c_str(), nullptr, 10) : 30000;

  if (scheme_arg == "list" || scheme_arg == "--scheme=list") {
    for (const std::string& name : SchemeRegistry::List()) {
      std::printf("%-14s %s\n", name.c_str(),
                  SchemeRegistry::Find(name)->description.c_str());
    }
    std::printf("%-14s %s\n", "raid5",
                "afraid under the always-synchronous-parity policy");
    return 0;
  }

  FleetConfig cfg;
  cfg.num_shards = 8;
  cfg.chunk_bytes = 4 << 20;
  cfg.seed = 1996;
  cfg.array.layout = layout;
  cfg.array.decluster_width = decluster_width;
  cfg.spares = spares;
  if (scheme_arg == "raid5") {
    cfg.scheme = "afraid";  // The policy picks the write path.
    cfg.policy = PolicySpec::Raid5();
  } else if (SchemeRegistry::Find(scheme_arg) != nullptr) {
    cfg.scheme = scheme_arg;
  } else {
    std::fprintf(stderr,
                 "unknown scheme '%s' (try 'list' for the registry)\n",
                 scheme_arg.c_str());
    return 1;
  }

  const char* obs_env = std::getenv("AFRAID_OBS_DIR");
  const std::string obs_dir = obs_env != nullptr ? obs_env : "";

  for (const ShardingKind kind :
       {ShardingKind::kRange, ShardingKind::kConsistentHash}) {
    cfg.sharding = kind;
    VolumeManager vm(cfg);

    // The management timeline, registered before the run and applied online:
    // disk 1 of shard 2 dies at t=20s, a replacement arrives at t=90s and
    // reconstructs while shard 2 keeps serving degraded. Info snapshots
    // bracket the incident.
    vm.DiskFail(Seconds(20), /*shard=*/2, /*disk=*/1);
    vm.InfoAt(Seconds(60), /*shard=*/-1);
    if (spares == 0) {
      // An empty pool refuses the repair; restock just ahead of it so the
      // incident still resolves (and the refusal counters stay visible).
      vm.SpareAdd(Seconds(80), /*shard=*/2);
    }
    vm.DiskRepaired(Seconds(90), /*shard=*/2, /*disk=*/1);

    FleetWorkloadParams wp;
    wp.name = "fleet-mix";
    wp.seed = 7;
    wp.num_tenants = 1200;
    wp.max_requests = requests;
    wp.max_duration = Minutes(10);
    const FleetTrace trace = GenerateFleetWorkload(wp, vm.VolumeBytes());

    VolumeManager::RunOptions opts;
    if (!obs_dir.empty()) {
      opts.artifacts_dir = obs_dir + "/" + ShardingKindName(kind);
      opts.trace_shards = true;
    }
    const FleetReport rep = vm.Run(trace, opts);

    std::printf("== %s / %s: %d shards, %d tenants, %zu arrivals over %.0f s "
                "(volume %.1f GB, %lld chunks, %lld spilled)\n",
                rep.scheme.c_str(), rep.sharding.c_str(), rep.num_shards,
                rep.num_tenants, trace.Size(), ToSeconds(trace.Duration()),
                static_cast<double>(vm.VolumeBytes()) / (1 << 30),
                static_cast<long long>(vm.shard_map().num_chunks()),
                static_cast<long long>(vm.shard_map().SpilledChunks()));
    std::printf("   client latency ms: mean %.2f  p50 %.2f  p90 %.2f  "
                "p99 %.2f  p999 %.2f  max %.1f\n",
                rep.mean_ms, rep.p50_ms, rep.p90_ms, rep.p99_ms, rep.p999_ms,
                rep.max_ms);
    std::printf("   %llu served (%llu reads / %llu writes), %llu split "
                "across shards, %llu dropped\n",
                static_cast<unsigned long long>(rep.requests),
                static_cast<unsigned long long>(rep.reads),
                static_cast<unsigned long long>(rep.writes),
                static_cast<unsigned long long>(rep.split_requests),
                static_cast<unsigned long long>(rep.dropped));
    std::printf("   load balance: max/mean %.3f, cv %.3f, byte max/mean %.3f\n",
                rep.imbalance_max_mean, rep.imbalance_cv,
                rep.byte_imbalance_max_mean);
    std::printf("   availability: %.1f degraded shard-seconds, %llu loss "
                "events, %lld bytes lost\n",
                rep.degraded_shard_s,
                static_cast<unsigned long long>(rep.loss_events),
                static_cast<long long>(rep.bytes_lost));
    uint64_t ref_fail = 0;
    uint64_t ref_repair = 0;
    uint64_t ref_info = 0;
    uint64_t ref_destroy = 0;
    uint64_t spares_added = 0;
    uint64_t spares_used = 0;
    uint64_t no_spare = 0;
    for (const ShardReport& s : rep.shards) {
      ref_fail += s.mgmt_unsupported_fail;
      ref_repair += s.mgmt_unsupported_repair;
      ref_info += s.mgmt_unsupported_info;
      ref_destroy += s.mgmt_unsupported_destroy;
      spares_added += s.spares_added;
      spares_used += s.spares_used;
      no_spare += s.repairs_refused_no_spare;
    }
    std::printf("   mgmt refused: fail %llu  repair %llu  info %llu  "
                "destroy %llu\n",
                static_cast<unsigned long long>(ref_fail),
                static_cast<unsigned long long>(ref_repair),
                static_cast<unsigned long long>(ref_info),
                static_cast<unsigned long long>(ref_destroy));
    if (spares >= 0) {
      std::printf("   spare pool: start %d/shard, added %llu, used %llu, "
                  "repairs refused empty %llu\n",
                  spares, static_cast<unsigned long long>(spares_added),
                  static_cast<unsigned long long>(spares_used),
                  static_cast<unsigned long long>(no_spare));
    }
    std::printf("   %-6s %9s %8s %8s %10s %7s %9s\n", "shard", "pieces",
                "mean ms", "p99 ms", "bytes MB", "util", "degr s");
    for (const ShardReport& s : rep.shards) {
      std::printf("   s%-5d %9llu %8.2f %8.2f %10.1f %7.3f %9.1f%s\n", s.shard,
                  static_cast<unsigned long long>(s.requests), s.mean_ms,
                  s.p99_ms, static_cast<double>(s.bytes) / (1 << 20),
                  s.disk_utilization, s.degraded_s,
                  s.disk_failed ? (s.repaired ? "  [failed+repaired]"
                                              : "  [failed]")
                                : "");
    }
    std::printf("\n");
  }

  if (!obs_dir.empty()) {
    std::fprintf(stderr, "recorded fleet artifacts under %s/<sharding>/\n",
                 obs_dir.c_str());
  }
  return 0;
}
