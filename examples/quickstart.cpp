// Quickstart: build a 5-disk AFRAID, write some data, watch the deferred
// parity machinery work, and print the availability report.
//
//   $ ./examples/quickstart

#include <cstdio>

#include "array/host_driver.h"
#include "core/afraid_controller.h"
#include "core/experiment.h"
#include "core/policy.h"
#include "sim/simulator.h"

using namespace afraid;

int main() {
  // 1. Configure the array the paper used: five 2 GB HP C3325-like disks,
  //    8 KB stripe unit, 256 KB write-through staging + 256 KB read cache.
  ArrayConfig cfg;
  cfg.disk_spec = DiskSpec::HpC3325Like();
  cfg.num_disks = 5;
  cfg.stripe_unit_bytes = 8192;

  // 2. Build the simulated world: a clock, the controller (with the baseline
  //    AFRAID policy: defer parity to 100 ms idle periods), a host driver.
  Simulator sim;
  AfraidController array(&sim, cfg, MakePolicy(PolicySpec::AfraidBaseline()),
                         AvailabilityParamsFor(cfg));
  HostDriver driver(&sim, &array, cfg.MaxActive());
  std::printf("array: %d disks, %.1f GB usable, %lld stripes, NVRAM bitmap %.1f KB\n",
              cfg.num_disks, array.DataCapacityBytes() / 1e9,
              static_cast<long long>(array.layout().num_stripes()),
              array.nvram().HardwareBits() / 8.0 / 1024.0);

  // 3. Issue a burst of small writes -- the RAID 5 small-update problem's
  //    home turf -- and drain them.
  for (int i = 0; i < 20; ++i) {
    driver.Submit(static_cast<int64_t>(i) * 4 * 8192, 8192, /*is_write=*/true);
  }
  while (!driver.Drained()) {
    sim.Step();
  }
  std::printf("\nafter a 20-write burst:\n");
  std::printf("  mean write latency        %.2f ms (1 disk I/O each)\n",
              driver.WriteLatencies().Mean());
  std::printf("  unprotected stripes       %lld\n",
              static_cast<long long>(array.nvram().DirtyCount()));
  std::printf("  current parity lag        %.0f KB\n",
              array.CurrentParityLagBytes() / 1024.0);

  // 4. Go idle. After 100 ms the background rebuilder recomputes parity for
  //    every marked stripe -- at zero cost to (absent) clients.
  sim.RunToEnd();
  std::printf("\nafter the idle period:\n");
  std::printf("  unprotected stripes       %lld\n",
              static_cast<long long>(array.nvram().DirtyCount()));
  std::printf("  stripes rebuilt           %llu\n",
              static_cast<unsigned long long>(array.StripesRebuilt()));

  // Let an hour of quiet pass so the exposure statistics reflect a realistic
  // observation window (the burst exposed the array for well under a second).
  sim.RunUntil(Hours(1));
  std::printf("  fraction of the first hour exposed  %.5f\n",
              array.TUnprotFraction());

  // 5. The availability model (Section 3 of the paper) on the measured
  //    exposure statistics.
  const AvailabilityParams ap = AvailabilityParamsFor(cfg);
  const AvailabilityReport rep = MakeAvailabilityReport(
      ap, RedundancyScheme::kAfraid, array.TUnprotFraction(),
      array.MeanParityLagBytes());
  std::printf("\navailability (Table 1 failure assumptions):\n");
  std::printf("  disk-related MTTDL        %.3g hours\n", rep.mttdl_disk_hours);
  std::printf("  overall MTTDL             %.3g hours (support-limited at %.3g)\n",
              rep.mttdl_overall_hours, ap.mttdl_support_hours);
  std::printf("  mean data-loss rate       %.1f bytes/hour (support dominates)\n",
              rep.mdlr_overall_bph);
  std::printf("  3-year loss probability   %.2f%%\n",
              LossProbability(rep.mttdl_overall_hours, 26e3) * 100.0);
  return 0;
}
